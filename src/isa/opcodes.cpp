#include "isa/opcodes.hpp"

#include "common/logging.hpp"

namespace vpsim
{

InstClass
instClassOf(OpCode op)
{
    switch (op) {
      case OpCode::Add:
      case OpCode::Sub:
      case OpCode::And:
      case OpCode::Or:
      case OpCode::Xor:
      case OpCode::Slt:
      case OpCode::Sltu:
      case OpCode::Sll:
      case OpCode::Srl:
      case OpCode::Sra:
      case OpCode::Addi:
      case OpCode::Andi:
      case OpCode::Ori:
      case OpCode::Xori:
      case OpCode::Slti:
      case OpCode::Slli:
      case OpCode::Srli:
      case OpCode::Srai:
      case OpCode::Lui:
        return InstClass::IntAlu;
      case OpCode::Mul:
        return InstClass::IntMul;
      case OpCode::Div:
      case OpCode::Rem:
        return InstClass::IntDiv;
      case OpCode::Ld:
      case OpCode::Lbu:
        return InstClass::Load;
      case OpCode::St:
      case OpCode::Sb:
        return InstClass::Store;
      case OpCode::Beq:
      case OpCode::Bne:
      case OpCode::Blt:
      case OpCode::Bge:
      case OpCode::Bltu:
      case OpCode::Bgeu:
        return InstClass::Branch;
      case OpCode::Jal:
      case OpCode::Jalr:
        return InstClass::Jump;
      case OpCode::Nop:
        return InstClass::Nop;
      case OpCode::Halt:
        return InstClass::Halt;
      case OpCode::NumOpCodes:
        break;
    }
    panic("instClassOf: invalid opcode");
}

std::string_view
opcodeName(OpCode op)
{
    switch (op) {
      case OpCode::Add: return "add";
      case OpCode::Sub: return "sub";
      case OpCode::And: return "and";
      case OpCode::Or: return "or";
      case OpCode::Xor: return "xor";
      case OpCode::Slt: return "slt";
      case OpCode::Sltu: return "sltu";
      case OpCode::Sll: return "sll";
      case OpCode::Srl: return "srl";
      case OpCode::Sra: return "sra";
      case OpCode::Mul: return "mul";
      case OpCode::Div: return "div";
      case OpCode::Rem: return "rem";
      case OpCode::Addi: return "addi";
      case OpCode::Andi: return "andi";
      case OpCode::Ori: return "ori";
      case OpCode::Xori: return "xori";
      case OpCode::Slti: return "slti";
      case OpCode::Slli: return "slli";
      case OpCode::Srli: return "srli";
      case OpCode::Srai: return "srai";
      case OpCode::Lui: return "lui";
      case OpCode::Ld: return "ld";
      case OpCode::St: return "st";
      case OpCode::Lbu: return "lbu";
      case OpCode::Sb: return "sb";
      case OpCode::Beq: return "beq";
      case OpCode::Bne: return "bne";
      case OpCode::Blt: return "blt";
      case OpCode::Bge: return "bge";
      case OpCode::Bltu: return "bltu";
      case OpCode::Bgeu: return "bgeu";
      case OpCode::Jal: return "jal";
      case OpCode::Jalr: return "jalr";
      case OpCode::Nop: return "nop";
      case OpCode::Halt: return "halt";
      case OpCode::NumOpCodes: break;
    }
    panic("opcodeName: invalid opcode");
}

bool
isConditionalBranch(OpCode op)
{
    return instClassOf(op) == InstClass::Branch;
}

bool
isControl(OpCode op)
{
    const InstClass cls = instClassOf(op);
    return cls == InstClass::Branch || cls == InstClass::Jump;
}

bool
writesDest(OpCode op)
{
    switch (instClassOf(op)) {
      case InstClass::IntAlu:
      case InstClass::IntMul:
      case InstClass::IntDiv:
      case InstClass::Load:
        return true;
      case InstClass::Jump:
        // jal/jalr link into rd (rd may be r0 for a plain jump).
        return true;
      case InstClass::Store:
      case InstClass::Branch:
      case InstClass::Nop:
      case InstClass::Halt:
        return false;
    }
    panic("writesDest: invalid opcode");
}

bool
readsSrc1(OpCode op)
{
    switch (op) {
      case OpCode::Lui:
      case OpCode::Jal:
      case OpCode::Nop:
      case OpCode::Halt:
        return false;
      default:
        return true;
    }
}

bool
readsSrc2(OpCode op)
{
    switch (op) {
      case OpCode::Add:
      case OpCode::Sub:
      case OpCode::And:
      case OpCode::Or:
      case OpCode::Xor:
      case OpCode::Slt:
      case OpCode::Sltu:
      case OpCode::Sll:
      case OpCode::Srl:
      case OpCode::Sra:
      case OpCode::Mul:
      case OpCode::Div:
      case OpCode::Rem:
      case OpCode::Beq:
      case OpCode::Bne:
      case OpCode::Blt:
      case OpCode::Bge:
      case OpCode::Bltu:
      case OpCode::Bgeu:
      case OpCode::St:
      case OpCode::Sb:
        return true;
      default:
        return false;
    }
}

bool
isMemory(OpCode op)
{
    const InstClass cls = instClassOf(op);
    return cls == InstClass::Load || cls == InstClass::Store;
}

} // namespace vpsim
