#include "isa/opcodes.hpp"

#include "common/logging.hpp"

namespace vpsim
{

void
invalidOpcodePanic(const char *where, unsigned value)
{
    panic(std::string(where) + ": invalid opcode " +
          std::to_string(value));
}

std::string_view
opcodeName(OpCode op)
{
    switch (op) {
      case OpCode::Add: return "add";
      case OpCode::Sub: return "sub";
      case OpCode::And: return "and";
      case OpCode::Or: return "or";
      case OpCode::Xor: return "xor";
      case OpCode::Slt: return "slt";
      case OpCode::Sltu: return "sltu";
      case OpCode::Sll: return "sll";
      case OpCode::Srl: return "srl";
      case OpCode::Sra: return "sra";
      case OpCode::Mul: return "mul";
      case OpCode::Div: return "div";
      case OpCode::Rem: return "rem";
      case OpCode::Addi: return "addi";
      case OpCode::Andi: return "andi";
      case OpCode::Ori: return "ori";
      case OpCode::Xori: return "xori";
      case OpCode::Slti: return "slti";
      case OpCode::Slli: return "slli";
      case OpCode::Srli: return "srli";
      case OpCode::Srai: return "srai";
      case OpCode::Lui: return "lui";
      case OpCode::Ld: return "ld";
      case OpCode::St: return "st";
      case OpCode::Lbu: return "lbu";
      case OpCode::Sb: return "sb";
      case OpCode::Beq: return "beq";
      case OpCode::Bne: return "bne";
      case OpCode::Blt: return "blt";
      case OpCode::Bge: return "bge";
      case OpCode::Bltu: return "bltu";
      case OpCode::Bgeu: return "bgeu";
      case OpCode::Jal: return "jal";
      case OpCode::Jalr: return "jalr";
      case OpCode::Nop: return "nop";
      case OpCode::Halt: return "halt";
      case OpCode::NumOpCodes: break;
    }
    panic("opcodeName: invalid opcode");
}

} // namespace vpsim
