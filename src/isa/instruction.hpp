/**
 * @file
 * Static instruction representation of the mini RISC ISA.
 */

#ifndef VPSIM_ISA_INSTRUCTION_HPP
#define VPSIM_ISA_INSTRUCTION_HPP

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "isa/opcodes.hpp"

namespace vpsim
{

/** Byte size of one encoded instruction (fixed-width ISA). */
inline constexpr Addr instBytes = 4;

/** Number of architectural general-purpose registers; r0 reads as zero. */
inline constexpr unsigned numArchRegs = 32;

/**
 * One static instruction.
 *
 * Semantics summary:
 *  - ALU reg-reg:   rd = rs1 op rs2
 *  - ALU reg-imm:   rd = rs1 op imm            (lui: rd = imm << 16)
 *  - ld:            rd = mem64[rs1 + imm]
 *  - lbu:           rd = mem8[rs1 + imm]
 *  - st:            mem64[rs1 + imm] = rs2
 *  - sb:            mem8[rs1 + imm] = rs2 & 0xff
 *  - beq/bne/...:   if (rs1 cmp rs2) goto target
 *  - jal:           rd = linkValue; goto target
 *  - jalr:          rd = linkValue; goto rs1 + imm
 *
 * @c target is an *instruction index* into the owning Program (resolved
 * from a label by the ProgramBuilder), not a byte address.
 */
struct Instruction
{
    OpCode op = OpCode::Nop;
    RegIndex rd = invalidReg;
    RegIndex rs1 = invalidReg;
    RegIndex rs2 = invalidReg;
    std::int64_t imm = 0;
    std::uint32_t target = 0;

    /** Functional class (IntAlu / Load / Branch / ...). */
    InstClass instClass() const { return instClassOf(op); }

    /** True for conditional branches. */
    bool isConditional() const { return isConditionalBranch(op); }

    /** True for any control transfer. */
    bool isControlFlow() const { return isControl(op); }

    /** True when this instruction writes rd (and rd is not r0). */
    bool
    producesValue() const
    {
        return writesDest(op) && rd != invalidReg && rd != 0;
    }

    /** Disassemble for debugging, e.g. "add r3, r1, r2". */
    std::string disassemble() const;
};

} // namespace vpsim

#endif // VPSIM_ISA_INSTRUCTION_HPP
