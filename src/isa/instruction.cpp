#include "isa/instruction.hpp"

#include <sstream>

namespace vpsim
{

namespace
{

std::string
reg(RegIndex index)
{
    if (index == invalidReg)
        return "r?";
    return "r" + std::to_string(static_cast<unsigned>(index));
}

} // namespace

std::string
Instruction::disassemble() const
{
    std::ostringstream oss;
    oss << opcodeName(op);
    switch (instClass()) {
      case InstClass::IntAlu:
      case InstClass::IntMul:
      case InstClass::IntDiv:
        if (op == OpCode::Lui) {
            oss << " " << reg(rd) << ", " << imm;
        } else if (readsSrc2(op)) {
            oss << " " << reg(rd) << ", " << reg(rs1) << ", " << reg(rs2);
        } else {
            oss << " " << reg(rd) << ", " << reg(rs1) << ", " << imm;
        }
        break;
      case InstClass::Load:
        oss << " " << reg(rd) << ", " << imm << "(" << reg(rs1) << ")";
        break;
      case InstClass::Store:
        oss << " " << reg(rs2) << ", " << imm << "(" << reg(rs1) << ")";
        break;
      case InstClass::Branch:
        oss << " " << reg(rs1) << ", " << reg(rs2) << ", @" << target;
        break;
      case InstClass::Jump:
        if (op == OpCode::Jal)
            oss << " " << reg(rd) << ", @" << target;
        else
            oss << " " << reg(rd) << ", " << imm << "(" << reg(rs1) << ")";
        break;
      case InstClass::Nop:
      case InstClass::Halt:
        break;
    }
    return oss.str();
}

} // namespace vpsim
