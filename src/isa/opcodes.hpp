/**
 * @file
 * Opcode set of the mini RISC ISA executed by the trace-generating VM.
 *
 * The ISA is deliberately small: a load/store 64-bit RISC machine with 32
 * general-purpose registers (r0 hardwired to zero), conditional branches,
 * and direct/indirect jumps. It is rich enough for the eight mini
 * benchmarks (compression, interpreters, game search, DB transactions) to
 * be written naturally, which is what gives the traces realistic value
 * locality and control flow.
 */

#ifndef VPSIM_ISA_OPCODES_HPP
#define VPSIM_ISA_OPCODES_HPP

#include <cstdint>
#include <string_view>

namespace vpsim
{

/** Static opcode of one instruction. */
enum class OpCode : std::uint8_t
{
    // Register-register ALU.
    Add, Sub, And, Or, Xor, Slt, Sltu, Sll, Srl, Sra, Mul, Div, Rem,
    // Register-immediate ALU.
    Addi, Andi, Ori, Xori, Slti, Slli, Srli, Srai, Lui,
    // Memory (64-bit word and unsigned byte).
    Ld, St, Lbu, Sb,
    // Conditional branches (compare two registers).
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    // Unconditional control flow.
    Jal,  //!< Jump to label, link into rd.
    Jalr, //!< Jump to register + imm, link into rd.
    // Misc.
    Nop,
    Halt,

    NumOpCodes,
};

/** Coarse functional class of an instruction, used by machine models. */
enum class InstClass : std::uint8_t
{
    IntAlu,
    IntMul,
    IntDiv,
    Load,
    Store,
    Branch, //!< Conditional branch.
    Jump,   //!< Unconditional direct or indirect jump.
    Nop,
    Halt,
};

/**
 * Abort on a classification query for a byte that is not a valid
 * opcode (defined out of line; classification itself is inline).
 */
[[noreturn]] void invalidOpcodePanic(const char *where, unsigned value);

/**
 * Functional class of @p op.
 *
 * The classification queries below run once or twice per simulated
 * instruction in every machine model, so they are inline: the switch
 * compiles to a lookup, and callers that branch on the result keep
 * everything in registers instead of paying an out-of-line call (the
 * old opcodes.cpp definitions showed up as whole percents of the
 * pipeline-machine profile; see docs/PERF.md).
 */
constexpr InstClass
instClassOf(OpCode op)
{
    switch (op) {
      case OpCode::Add:
      case OpCode::Sub:
      case OpCode::And:
      case OpCode::Or:
      case OpCode::Xor:
      case OpCode::Slt:
      case OpCode::Sltu:
      case OpCode::Sll:
      case OpCode::Srl:
      case OpCode::Sra:
      case OpCode::Addi:
      case OpCode::Andi:
      case OpCode::Ori:
      case OpCode::Xori:
      case OpCode::Slti:
      case OpCode::Slli:
      case OpCode::Srli:
      case OpCode::Srai:
      case OpCode::Lui:
        return InstClass::IntAlu;
      case OpCode::Mul:
        return InstClass::IntMul;
      case OpCode::Div:
      case OpCode::Rem:
        return InstClass::IntDiv;
      case OpCode::Ld:
      case OpCode::Lbu:
        return InstClass::Load;
      case OpCode::St:
      case OpCode::Sb:
        return InstClass::Store;
      case OpCode::Beq:
      case OpCode::Bne:
      case OpCode::Blt:
      case OpCode::Bge:
      case OpCode::Bltu:
      case OpCode::Bgeu:
        return InstClass::Branch;
      case OpCode::Jal:
      case OpCode::Jalr:
        return InstClass::Jump;
      case OpCode::Nop:
        return InstClass::Nop;
      case OpCode::Halt:
        return InstClass::Halt;
      case OpCode::NumOpCodes:
        break;
    }
    invalidOpcodePanic("instClassOf", static_cast<unsigned>(op));
}

/** Mnemonic for @p op, e.g. "add". */
std::string_view opcodeName(OpCode op);

/** True for conditional branches. */
constexpr bool
isConditionalBranch(OpCode op)
{
    return instClassOf(op) == InstClass::Branch;
}

/** True for any control-transfer instruction (branch or jump). */
constexpr bool
isControl(OpCode op)
{
    const InstClass cls = instClassOf(op);
    return cls == InstClass::Branch || cls == InstClass::Jump;
}

/** True when the instruction writes a destination register. */
constexpr bool
writesDest(OpCode op)
{
    switch (instClassOf(op)) {
      case InstClass::IntAlu:
      case InstClass::IntMul:
      case InstClass::IntDiv:
      case InstClass::Load:
        return true;
      case InstClass::Jump:
        // jal/jalr link into rd (rd may be r0 for a plain jump).
        return true;
      case InstClass::Store:
      case InstClass::Branch:
      case InstClass::Nop:
      case InstClass::Halt:
        return false;
    }
    invalidOpcodePanic("writesDest", static_cast<unsigned>(op));
}

/** True when the opcode reads rs1. */
constexpr bool
readsSrc1(OpCode op)
{
    switch (op) {
      case OpCode::Lui:
      case OpCode::Jal:
      case OpCode::Nop:
      case OpCode::Halt:
        return false;
      default:
        return true;
    }
}

/** True when the opcode reads rs2. */
constexpr bool
readsSrc2(OpCode op)
{
    switch (op) {
      case OpCode::Add:
      case OpCode::Sub:
      case OpCode::And:
      case OpCode::Or:
      case OpCode::Xor:
      case OpCode::Slt:
      case OpCode::Sltu:
      case OpCode::Sll:
      case OpCode::Srl:
      case OpCode::Sra:
      case OpCode::Mul:
      case OpCode::Div:
      case OpCode::Rem:
      case OpCode::Beq:
      case OpCode::Bne:
      case OpCode::Blt:
      case OpCode::Bge:
      case OpCode::Bltu:
      case OpCode::Bgeu:
      case OpCode::St:
      case OpCode::Sb:
        return true;
      default:
        return false;
    }
}

/** True for loads and stores. */
constexpr bool
isMemory(OpCode op)
{
    const InstClass cls = instClassOf(op);
    return cls == InstClass::Load || cls == InstClass::Store;
}

} // namespace vpsim

#endif // VPSIM_ISA_OPCODES_HPP
