/**
 * @file
 * Opcode set of the mini RISC ISA executed by the trace-generating VM.
 *
 * The ISA is deliberately small: a load/store 64-bit RISC machine with 32
 * general-purpose registers (r0 hardwired to zero), conditional branches,
 * and direct/indirect jumps. It is rich enough for the eight mini
 * benchmarks (compression, interpreters, game search, DB transactions) to
 * be written naturally, which is what gives the traces realistic value
 * locality and control flow.
 */

#ifndef VPSIM_ISA_OPCODES_HPP
#define VPSIM_ISA_OPCODES_HPP

#include <cstdint>
#include <string_view>

namespace vpsim
{

/** Static opcode of one instruction. */
enum class OpCode : std::uint8_t
{
    // Register-register ALU.
    Add, Sub, And, Or, Xor, Slt, Sltu, Sll, Srl, Sra, Mul, Div, Rem,
    // Register-immediate ALU.
    Addi, Andi, Ori, Xori, Slti, Slli, Srli, Srai, Lui,
    // Memory (64-bit word and unsigned byte).
    Ld, St, Lbu, Sb,
    // Conditional branches (compare two registers).
    Beq, Bne, Blt, Bge, Bltu, Bgeu,
    // Unconditional control flow.
    Jal,  //!< Jump to label, link into rd.
    Jalr, //!< Jump to register + imm, link into rd.
    // Misc.
    Nop,
    Halt,

    NumOpCodes,
};

/** Coarse functional class of an instruction, used by machine models. */
enum class InstClass : std::uint8_t
{
    IntAlu,
    IntMul,
    IntDiv,
    Load,
    Store,
    Branch, //!< Conditional branch.
    Jump,   //!< Unconditional direct or indirect jump.
    Nop,
    Halt,
};

/** Functional class of @p op. */
InstClass instClassOf(OpCode op);

/** Mnemonic for @p op, e.g. "add". */
std::string_view opcodeName(OpCode op);

/** True for conditional branches. */
bool isConditionalBranch(OpCode op);

/** True for any control-transfer instruction (branch or jump). */
bool isControl(OpCode op);

/** True when the instruction writes a destination register. */
bool writesDest(OpCode op);

/** True when the opcode reads rs1. */
bool readsSrc1(OpCode op);

/** True when the opcode reads rs2. */
bool readsSrc2(OpCode op);

/** True for loads and stores. */
bool isMemory(OpCode op);

} // namespace vpsim

#endif // VPSIM_ISA_OPCODES_HPP
