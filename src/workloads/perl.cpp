/**
 * @file
 * perl mini-benchmark: anagram search, mirroring SPEC95's perl (whose
 * reference input is an anagram search script).
 *
 * For a rotating target word the program computes letter-count signatures
 * of every dictionary word, compares them byte-by-byte (with early-out
 * branches), and hashes words into a "seen" table. Character loads and
 * small-count updates dominate; the compare loop's early exits are data
 * dependent.
 */

#include "workloads/workload.hpp"

#include "common/rng.hpp"
#include "workloads/regs.hpp"
#include "vm/program_builder.hpp"

namespace vpsim
{

namespace
{

using namespace regs;

constexpr Addr dictBase = 0x800000;
constexpr Addr sigBase = 0x810000;   // 26-byte working signature
constexpr Addr tsigBase = 0x810040;  // 26-byte target signature
constexpr Addr seenBase = 0x820000;  // hash-count table
constexpr Addr outBase = 0x830000;


constexpr std::int64_t wordBytes = 8;
constexpr std::int64_t alphabet = 26;
constexpr std::int64_t seenMask = 1023;

/** Dictionary over a narrow alphabet so anagram pairs actually occur. */
std::vector<std::uint8_t>
makeDictionary(std::int64_t numWords, std::uint64_t seed)
{
    Rng rng(0x9e71a6 ^ seed);
    std::vector<std::uint8_t> dict(numWords * wordBytes);
    for (std::int64_t w = 0; w < numWords; ++w) {
        for (std::int64_t i = 0; i < wordBytes; ++i) {
            dict[w * wordBytes + i] =
                static_cast<std::uint8_t>('a' + rng.nextBelow(8));
        }
    }
    // Plant some exact anagrams: copies of earlier words with two letters
    // swapped.
    for (std::int64_t w = 16; w < numWords; w += 16) {
        const std::int64_t src = w - 16;
        for (std::int64_t i = 0; i < wordBytes; ++i)
            dict[w * wordBytes + i] = dict[src * wordBytes + i];
        std::swap(dict[w * wordBytes + 1], dict[w * wordBytes + 5]);
    }
    return dict;
}

} // namespace

Workload
buildPerl(const WorkloadParams &params)
{
    const std::int64_t numWords =
        192 * static_cast<std::int64_t>(params.scale);
    ProgramBuilder b("perl");

    // s0 = word index, s1 = dict base, s2 = sig base, s3 = target sig
    // base, s4 = matches this pass, s5 = target word index, s6 = seen
    // base, s7 = total matches, s8 = passes.
    Label outer = b.newLabel();
    Label clearT = b.newLabel();
    Label countT = b.newLabel();
    Label wordLoop = b.newLabel();
    Label clearS = b.newLabel();
    Label countS = b.newLabel();
    Label compare = b.newLabel();
    Label noMatch = b.newLabel();
    Label matched = b.newLabel();
    Label hashWord = b.newLabel();
    Label nextWord = b.newLabel();

    b.li(s5, 0);
    b.li(s7, 0);
    b.li(s8, 0);

    b.bind(outer);
    b.li(s1, dictBase);
    b.li(s2, sigBase);
    b.li(s3, tsigBase);
    b.li(s6, seenBase);
    b.li(s4, 0);
    b.addi(s8, s8, 1);
    // Rotate the target word.
    b.addi(s5, s5, 1);
    b.li(t0, numWords);
    b.rem(s5, s5, t0);

    // --- build the target signature ---
    b.li(t0, 0);
    b.bind(clearT);
    b.add(t1, t0, s3);
    b.sb(zero, t1, 0);
    b.addi(t0, t0, 1);
    b.li(t2, alphabet);
    b.blt(t0, t2, clearT);

    b.slli(t3, s5, 3);           // target word address
    b.add(t3, t3, s1);
    b.li(t0, 0);
    b.bind(countT);
    b.add(t1, t3, t0);
    b.lbu(t2, t1, 0);
    b.addi(t2, t2, -'a');
    b.add(t2, t2, s3);
    b.lbu(t4, t2, 0);
    b.addi(t4, t4, 1);
    b.sb(t4, t2, 0);
    b.addi(t0, t0, 1);
    b.li(t5, wordBytes);
    b.blt(t0, t5, countT);

    // --- scan the dictionary ---
    b.li(s0, 0);
    b.bind(wordLoop);
    // clear working signature
    b.li(t0, 0);
    b.bind(clearS);
    b.add(t1, t0, s2);
    b.sb(zero, t1, 0);
    b.addi(t0, t0, 1);
    b.li(t2, alphabet);
    b.blt(t0, t2, clearS);
    // count letters of word s0
    b.slli(t3, s0, 3);
    b.add(t3, t3, s1);
    b.li(t0, 0);
    b.bind(countS);
    b.add(t1, t3, t0);
    b.lbu(t2, t1, 0);
    b.addi(t2, t2, -'a');
    b.add(t2, t2, s2);
    b.lbu(t4, t2, 0);
    b.addi(t4, t4, 1);
    b.sb(t4, t2, 0);
    b.addi(t0, t0, 1);
    b.li(t5, wordBytes);
    b.blt(t0, t5, countS);
    // compare signatures with early exit
    b.li(t0, 0);
    b.bind(compare);
    b.add(t1, t0, s2);
    b.lbu(t2, t1, 0);
    b.add(t1, t0, s3);
    b.lbu(t4, t1, 0);
    b.bne(t2, t4, noMatch);
    b.addi(t0, t0, 1);
    b.li(t5, alphabet);
    b.blt(t0, t5, compare);
    b.bind(matched);
    b.beq(s0, s5, hashWord);     // a word is not its own anagram
    b.addi(s4, s4, 1);
    b.addi(s7, s7, 1);
    b.j(hashWord);
    b.bind(noMatch);

    // hash the word into the seen table
    b.bind(hashWord);
    b.slli(t3, s0, 3);
    b.add(t3, t3, s1);
    b.li(t6, 0);                 // h
    b.li(t0, 0);
    Label hashLoop = b.newLabel();
    b.bind(hashLoop);
    b.add(t1, t3, t0);
    b.lbu(t2, t1, 0);
    b.slli(t7, t6, 5);
    b.sub(t7, t7, t6);           // h*31
    b.add(t6, t7, t2);
    b.addi(t0, t0, 1);
    b.li(t5, wordBytes);
    b.blt(t0, t5, hashLoop);
    b.andi(t6, t6, seenMask);
    b.slli(t6, t6, 3);
    b.add(t6, t6, s6);
    b.ld(t7, t6, 0);
    b.addi(t7, t7, 1);
    b.st(t7, t6, 0);             // seen[h]++

    b.bind(nextWord);
    b.addi(s0, s0, 1);
    b.li(t5, numWords);
    b.blt(s0, t5, wordLoop);
    // record the pass result
    b.andi(t0, s8, 0xff);
    b.slli(t0, t0, 3);
    b.li(t1, outBase);
    b.add(t0, t0, t1);
    b.st(s4, t0, 0);
    b.j(outer);

    Program program = b.build();

    Memory mem;
    const auto dict = makeDictionary(numWords, params.seed);
    mem.writeBlock(dictBase, dict.data(), dict.size());

    return Workload{"perl", std::move(program), std::move(mem)};
}

} // namespace vpsim
