/**
 * @file
 * compress mini-benchmark: LZW-style adaptive compression, mirroring
 * SPEC95's compress95 (adaptive Lempel-Ziv coding).
 *
 * The hot loop hashes (prefix, next-char) pairs into an open-addressed
 * dictionary. Hash values and probe results are data dependent, which is
 * why the real compress is among the least value-predictable SPEC
 * programs; the emit counter and output cursor provide the few stride
 * patterns the predictor can catch.
 */

#include "workloads/workload.hpp"

#include "common/rng.hpp"
#include "workloads/regs.hpp"
#include "vm/program_builder.hpp"

namespace vpsim
{

namespace
{

using namespace regs;

constexpr Addr inputBase = 0x300000;
constexpr Addr htKeysBase = 0x310000;
constexpr Addr htCodesBase = 0x320000;
constexpr Addr outBase = 0x400000;


constexpr std::int64_t tableMask = 4095;
constexpr std::int64_t tableCap = 4000;

/** Deterministic text-like corpus: Zipf-ish words over a small lexicon. */
std::vector<std::uint8_t>
makeCorpus(std::size_t size, std::uint64_t seed)
{
    Rng rng(0xc0dec0de ^ seed);
    // Lexicon of short lowercase words.
    std::vector<std::string> lexicon;
    for (int i = 0; i < 80; ++i) {
        const std::size_t len = 3 + rng.nextBelow(6);
        std::string word;
        for (std::size_t j = 0; j < len; ++j)
            word.push_back(static_cast<char>('a' + rng.nextBelow(26)));
        lexicon.push_back(word);
    }
    std::vector<std::uint8_t> corpus;
    corpus.reserve(size + 16);
    while (corpus.size() < size) {
        // Zipf-like skew: prefer low lexicon indices.
        std::size_t pick = rng.nextBelow(80);
        pick = (pick * pick) / 80;
        for (const char ch : lexicon[pick])
            corpus.push_back(static_cast<std::uint8_t>(ch));
        corpus.push_back(' ');
    }
    corpus.resize(size);
    // Keep every byte nonzero so dictionary keys are never zero.
    for (auto &byte : corpus) {
        if (byte == 0)
            byte = ' ';
    }
    return corpus;
}

} // namespace

Workload
buildCompress(const WorkloadParams &params)
{
    const std::int64_t inputLen =
        8192 * static_cast<std::int64_t>(params.scale);
    ProgramBuilder b("compress");

    // s0 = pos, s1 = input base, s2 = ht keys base, s3 = ht codes base,
    // s4 = output base, s5 = w (current prefix code), s6 = next free code,
    // s7 = table mask, s8 = emit count, s9 = input length.
    Label outer = b.newLabel();
    Label loop = b.newLabel();
    Label probe = b.newLabel();
    Label hit = b.newLabel();
    Label insert = b.newLabel();
    Label emitw = b.newLabel();
    Label next = b.newLabel();

    // One-time counters.
    b.li(s6, 256);
    b.li(s8, 0);

    b.bind(outer);
    b.li(s1, inputBase);
    b.li(s2, htKeysBase);
    b.li(s3, htCodesBase);
    b.li(s4, outBase);
    b.li(s7, tableMask);
    b.li(s9, inputLen);
    b.lbu(s5, s1, 0);            // w = input[0]
    b.li(s0, 1);                 // pos = 1

    b.bind(loop);
    b.add(t0, s0, s1);
    b.lbu(t1, t0, 0);            // c = input[pos]
    b.slli(t2, s5, 9);
    b.or_(t2, t2, t1);           // key = (w << 9) | c
    b.li(t3, 0x9e3779b1);
    b.mul(t4, t2, t3);
    b.srli(t4, t4, 16);
    b.and_(t4, t4, s7);          // h = hash(key)

    b.bind(probe);
    b.slli(t5, t4, 3);
    b.add(t6, t5, s2);
    b.ld(t7, t6, 0);             // k = htKeys[h]
    b.beq(t7, t2, hit);
    b.beq(t7, zero, insert);
    b.addi(t4, t4, 1);
    b.and_(t4, t4, s7);
    b.j(probe);

    b.bind(hit);
    b.add(t8, t5, s3);
    b.ld(s5, t8, 0);             // w = htCodes[h]
    b.j(next);

    b.bind(insert);
    b.li(a3, tableCap);
    b.bge(s6, a3, emitw);        // dictionary full: emit without insert
    b.st(t2, t6, 0);             // htKeys[h] = key
    b.add(t8, t5, s3);
    b.st(s6, t8, 0);             // htCodes[h] = nextCode
    b.addi(s6, s6, 1);

    b.bind(emitw);
    b.slli(a0, s8, 3);
    b.add(a0, a0, s4);
    b.st(s5, a0, 0);             // out[emitCount] = w
    b.addi(s8, s8, 1);
    b.mv(s5, t1);                // w = c

    b.bind(next);
    b.addi(s0, s0, 1);
    b.blt(s0, s9, loop);
    // End of input: emit the final prefix, restart the pass.
    b.slli(a0, s8, 3);
    b.add(a0, a0, s4);
    b.st(s5, a0, 0);
    b.addi(s8, s8, 1);
    b.j(outer);

    Program program = b.build();

    Memory mem;
    const auto corpus = makeCorpus(inputLen, params.seed);
    mem.writeBlock(inputBase, corpus.data(), corpus.size());

    return Workload{"compress", std::move(program), std::move(mem)};
}

} // namespace vpsim
