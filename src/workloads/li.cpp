/**
 * @file
 * li mini-benchmark: cons-cell list processing, mirroring SPEC95's li
 * (xlisp interpreter).
 *
 * A heap of cons cells (car, cdr pairs) is threaded into lists whose cells
 * are deliberately shuffled in memory, so cdr-chasing loads return
 * non-stride pointers. The driver folds, maps and reverses lists and uses
 * a recursive (call/ret, memory-stack) sum, giving the trace interpreter-
 * style pointer chasing, deep call chains and moderate predictability.
 */

#include "workloads/workload.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "workloads/regs.hpp"
#include "vm/program_builder.hpp"

namespace vpsim
{

namespace
{

using namespace regs;

constexpr Addr heapBase = 0x600000;
constexpr Addr stackBase = 0x680000;   // grows downward


constexpr std::int64_t cellBytes = 16; // car (8) + cdr (8)

} // namespace

Workload
buildLi(const WorkloadParams &params)
{
    // The recursive sum descends the whole list; the cell count is
    // clamped so the memory stack never reaches down into the heap.
    const std::int64_t numCells = std::min<std::int64_t>(
        96 * static_cast<std::int64_t>(params.scale), 4096);
    ProgramBuilder b("li");

    // s0 = list head, s1 = heap base, s2 = iteration counter,
    // s3 = fold accumulator, s5 = scratch across calls, s9 = epoch.
    Label top = b.newLabel();
    Label iterate = b.newLabel();
    Label foldFn = b.newLabel();
    Label foldLoop = b.newLabel();
    Label foldDone = b.newLabel();
    Label mapFn = b.newLabel();
    Label mapLoop = b.newLabel();
    Label mapDone = b.newLabel();
    Label revFn = b.newLabel();
    Label revLoop = b.newLabel();
    Label revDone = b.newLabel();
    Label sumFn = b.newLabel();
    Label sumRec = b.newLabel();
    Label sumBase = b.newLabel();
    Label lenFn = b.newLabel();
    Label lenLoop = b.newLabel();
    Label lenDone = b.newLabel();

    b.li(s9, 0);

    b.bind(top);
    b.li(s1, heapBase);
    b.li(sp, stackBase);
    b.li(s0, heapBase);          // head = first cell (pre-linked image)
    b.li(s2, 0);
    b.addi(s9, s9, 1);

    b.bind(iterate);
    // sum = fold(head)
    b.mv(a0, s0);
    b.call(foldFn);
    b.mv(s3, a0);
    // map: car += (sum & 7) + 1
    b.andi(a1, s3, 7);
    b.addi(a1, a1, 1);
    b.mv(a0, s0);
    b.call(mapFn);
    // reverse the list in place
    b.mv(a0, s0);
    b.call(revFn);
    b.mv(s0, a0);
    // recursive sum (exercises call depth and the memory stack)
    b.mv(a0, s0);
    b.call(sumFn);
    b.add(s3, s3, a0);
    // length (cheap sanity pass)
    b.mv(a0, s0);
    b.call(lenFn);
    b.add(s3, s3, a0);

    b.addi(s2, s2, 1);
    b.li(t0, 24);
    b.blt(s2, t0, iterate);
    b.j(top);

    // --- fold: a0 = list -> a0 = sum of cars (iterative) ---
    b.bind(foldFn);
    b.li(t0, 0);
    b.bind(foldLoop);
    b.beq(a0, zero, foldDone);
    b.ld(t1, a0, 0);             // car
    b.add(t0, t0, t1);
    b.ld(a0, a0, 8);             // cdr
    b.j(foldLoop);
    b.bind(foldDone);
    b.mv(a0, t0);
    b.ret();

    // --- map: a0 = list, a1 = delta; car += delta ---
    b.bind(mapFn);
    b.bind(mapLoop);
    b.beq(a0, zero, mapDone);
    b.ld(t1, a0, 0);
    b.add(t1, t1, a1);
    b.st(t1, a0, 0);
    b.ld(a0, a0, 8);
    b.j(mapLoop);
    b.bind(mapDone);
    b.ret();

    // --- reverse in place: a0 = list -> a0 = new head ---
    b.bind(revFn);
    b.li(t0, 0);                 // prev
    b.bind(revLoop);
    b.beq(a0, zero, revDone);
    b.ld(t1, a0, 8);             // next
    b.st(t0, a0, 8);             // cdr = prev
    b.mv(t0, a0);
    b.mv(a0, t1);
    b.j(revLoop);
    b.bind(revDone);
    b.mv(a0, t0);
    b.ret();

    // --- recursive sum: a0 = list -> a0 = sum (uses the memory stack) ---
    b.bind(sumFn);
    b.bind(sumRec);
    b.beq(a0, zero, sumBase);
    b.addi(sp, sp, -16);
    b.st(ra, sp, 0);
    b.ld(t2, a0, 0);             // car
    b.st(t2, sp, 8);
    b.ld(a0, a0, 8);             // cdr
    b.call(sumRec);
    b.ld(t2, sp, 8);
    b.add(a0, a0, t2);
    b.ld(ra, sp, 0);
    b.addi(sp, sp, 16);
    b.ret();
    b.bind(sumBase);
    b.li(a0, 0);
    b.ret();

    // --- length: a0 = list -> a0 = count ---
    b.bind(lenFn);
    b.li(t0, 0);
    b.bind(lenLoop);
    b.beq(a0, zero, lenDone);
    b.addi(t0, t0, 1);
    b.ld(a0, a0, 8);
    b.j(lenLoop);
    b.bind(lenDone);
    b.mv(a0, t0);
    b.ret();

    Program program = b.build();

    // Heap image: cons cells are laid out mostly in allocation order (a
    // sequential free list, as in the real xlisp), so most cdr pointers
    // stride by the cell size; a handful of transpositions model cells
    // recycled after garbage collection, breaking the stride now and
    // then.
    Memory mem;
    Rng rng(0x11511151 ^ params.seed);
    std::vector<std::int64_t> chain;
    for (std::int64_t i = 0; i < numCells; ++i)
        chain.push_back(i);
    for (int swaps = 0; swaps < 6; ++swaps) {
        const std::size_t a = 1 + rng.nextBelow(numCells - 1);
        const std::size_t b_idx = 1 + rng.nextBelow(numCells - 1);
        std::swap(chain[a], chain[b_idx]);
    }
    for (std::size_t i = 0; i < chain.size(); ++i) {
        const Addr cell = heapBase + chain[i] * cellBytes;
        const Value car = 10 + (rng.nextBelow(90));
        const Value cdr = i + 1 < chain.size()
            ? heapBase + chain[i + 1] * cellBytes
            : 0;
        mem.write64(cell, car);
        mem.write64(cell + 8, cdr);
    }

    return Workload{"li", std::move(program), std::move(mem)};
}

} // namespace vpsim
