/**
 * @file
 * The eight mini-benchmarks standing in for SPECint95 (paper Table 3.1).
 *
 * The paper drives its simulators from Shade-captured traces of the eight
 * SPECint95 programs. Those binaries and traces are not redistributable, so
 * this repository ships eight small but genuine programs for the mini ISA,
 * one per SPEC program, each capturing the flavour of the original:
 *
 *  - go:       game-playing; board scans with branchy positional scoring.
 *  - m88ksim:  a simulator for a tiny guest CPU (fetch/decode/dispatch).
 *  - gcc:      tokenizer + symbol table + stack-machine code generation.
 *  - compress: LZW-style adaptive compression over a synthetic corpus.
 *  - li:       list/cons-cell interpreter with pointer chasing.
 *  - ijpeg:    8x8 integer DCT-like transform with quantization.
 *  - perl:     anagram search via letter-count signatures and hashing.
 *  - vortex:   object-oriented database transactions over indexed tables.
 *
 * Because the VM executes them for real, the traces carry organic value
 * locality: loop counters and address computations stride; hash values and
 * pixel data do not. DESIGN.md §2 documents this substitution.
 */

#ifndef VPSIM_WORKLOADS_WORKLOAD_HPP
#define VPSIM_WORKLOADS_WORKLOAD_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "trace/record.hpp"
#include "vm/memory.hpp"
#include "vm/program.hpp"

namespace vpsim
{

/** A ready-to-run benchmark: program image plus initial data memory. */
struct Workload
{
    std::string name;
    Program program;
    Memory memory;
};

/**
 * Input-set parameters, in the spirit of SPEC's test/train/ref sizes.
 *
 * @c scale multiplies the benchmark's data-set size (corpus length,
 * record capacity, dictionary size, guest iterations, ...); @c seed
 * perturbs the generated input data. The defaults reproduce the
 * canonical inputs used by the figure benches exactly.
 */
struct WorkloadParams
{
    unsigned scale = 1;
    std::uint64_t seed = 0;
};

/** @name Individual benchmark builders. */
/// @{
Workload buildGo(const WorkloadParams &params = {});
Workload buildM88ksim(const WorkloadParams &params = {});
Workload buildGcc(const WorkloadParams &params = {});
Workload buildCompress(const WorkloadParams &params = {});
Workload buildLi(const WorkloadParams &params = {});
Workload buildIjpeg(const WorkloadParams &params = {});
Workload buildPerl(const WorkloadParams &params = {});
Workload buildVortex(const WorkloadParams &params = {});
/// @}

/** Names of all eight benchmarks in the paper's reporting order. */
const std::vector<std::string> &workloadNames();

/**
 * One-line description of a benchmark, in the spirit of the paper's
 * Table 3.1 (which describes the SPECint95 originals).
 */
std::string workloadDescription(const std::string &name);

/** Build a benchmark by name; fatal() on unknown names. */
Workload buildWorkload(const std::string &name,
                       const WorkloadParams &params = {});

/**
 * Build the benchmark and capture @p max_insts dynamic instructions.
 *
 * This is the standard entry point used by tests, examples, and the
 * figure benches.
 */
std::vector<TraceRecord>
captureWorkloadTrace(const std::string &name, std::uint64_t max_insts,
                     const WorkloadParams &params = {});

/**
 * Streaming variant: build the benchmark and deliver its trace to
 * @p sink in bounded chunks of at most @p chunk_insts records (see
 * captureTraceChunked), so a capture headed for disk never
 * materializes in memory first.
 */
[[nodiscard]] Status captureWorkloadTraceChunked(
    const std::string &name, std::uint64_t max_insts,
    const WorkloadParams &params, std::uint64_t chunk_insts,
    const std::function<Status(const std::vector<TraceRecord> &)>
        &sink);

} // namespace vpsim

#endif // VPSIM_WORKLOADS_WORKLOAD_HPP
