/**
 * @file
 * gcc mini-benchmark: tokenizer + expression evaluator + code emission,
 * mirroring SPEC95's gcc (a compiler).
 *
 * The program scans a synthetic source buffer of assignment statements
 * ("d=a+3*b;"), tokenizes characters with class-test branches, evaluates
 * expressions left-to-right through a called operand-fetch function, and
 * emits (lhs, value) tuples. Compiler-style code is dominated by short
 * data-dependent branches and call/return traffic.
 */

#include "workloads/workload.hpp"

#include "common/rng.hpp"
#include "workloads/regs.hpp"
#include "vm/program_builder.hpp"

namespace vpsim
{

namespace
{

using namespace regs;

constexpr Addr srcBase = 0x900000;
constexpr Addr symBase = 0x910000;   // 26 variable slots
constexpr Addr emitBase = 0x920000;
constexpr Addr stackBase = 0x980000;



/**
 * Synthetic source: three-term assignment statements over a-z, digits
 * and + - * &. Every statement is exactly eight characters
 * ("d=a+3*b;"), so the tokenizer cursor advances in a fixed pattern —
 * like a fixed-format record scanner — while operators and operand kinds
 * still vary per statement.
 */
std::vector<std::uint8_t>
makeSource(std::int64_t num_statements, std::uint64_t seed)
{
    Rng rng(0x6cc6cc ^ seed);
    const char ops[4] = {'+', '-', '*', '&'};
    std::string text;
    for (std::int64_t s = 0; s < num_statements; ++s) {
        text.push_back(static_cast<char>('a' + rng.nextBelow(26)));
        text.push_back('=');
        for (std::size_t t = 0; t < 3; ++t) {
            if (t > 0)
                text.push_back(ops[rng.nextBelow(4)]);
            if (rng.nextChance(1, 3))
                text.push_back(static_cast<char>('1' + rng.nextBelow(9)));
            else
                text.push_back(static_cast<char>('a' + rng.nextBelow(26)));
        }
        text.push_back(';');
    }
    text.push_back('\0');
    return {text.begin(), text.end()};
}

} // namespace

Workload
buildGcc(const WorkloadParams &params)
{
    const std::int64_t num_statements =
        400 * static_cast<std::int64_t>(params.scale);
    ProgramBuilder b("gcc");

    // s0 = source cursor, s1 = source base, s2 = symtab base,
    // s3 = emit base, s4 = emit cursor, s5 = statement count,
    // s6 = accumulator, s7 = lhs slot, s8 = passes.
    Label outer = b.newLabel();
    Label stmt = b.newLabel();
    Label oploop = b.newLabel();
    Label doAdd = b.newLabel();
    Label doSub = b.newLabel();
    Label doMul = b.newLabel();
    Label doAnd = b.newLabel();
    Label opDone = b.newLabel();
    Label endStmt = b.newLabel();
    Label getVal = b.newLabel();
    Label getDigit = b.newLabel();

    b.li(s8, 0);
    b.li(s4, 0);

    b.bind(outer);
    b.li(s1, srcBase);
    b.li(s2, symBase);
    b.li(s3, emitBase);
    b.li(sp, stackBase);
    b.li(s5, 0);
    b.li(s0, 0);
    b.addi(s8, s8, 1);

    b.bind(stmt);
    b.add(t0, s0, s1);
    b.lbu(t1, t0, 0);            // lhs letter or NUL
    b.beq(t1, zero, outer);      // end of source: start a new pass
    b.addi(s7, t1, -'a');        // lhs slot index
    b.addi(s0, s0, 2);           // skip the letter and '='
    // first operand
    b.add(t0, s0, s1);
    b.lbu(a0, t0, 0);
    b.addi(s0, s0, 1);
    b.call(getVal);
    b.mv(s6, a0);

    b.bind(oploop);
    b.add(t0, s0, s1);
    b.lbu(t2, t0, 0);            // operator or ';'
    b.addi(s0, s0, 1);
    b.li(t3, ';');
    b.beq(t2, t3, endStmt);
    // fetch the next operand
    b.add(t0, s0, s1);
    b.lbu(a0, t0, 0);
    b.addi(s0, s0, 1);
    b.call(getVal);
    // dispatch on the operator
    b.li(t3, '+');
    b.beq(t2, t3, doAdd);
    b.li(t3, '-');
    b.beq(t2, t3, doSub);
    b.li(t3, '*');
    b.beq(t2, t3, doMul);
    b.j(doAnd);
    b.bind(doAdd);
    b.add(s6, s6, a0);
    b.j(opDone);
    b.bind(doSub);
    b.sub(s6, s6, a0);
    b.j(opDone);
    b.bind(doMul);
    b.mul(s6, s6, a0);
    b.j(opDone);
    b.bind(doAnd);
    b.and_(s6, s6, a0);
    b.bind(opDone);
    b.j(oploop);

    b.bind(endStmt);
    // symtab[lhs] = acc (keep values bounded with a mask)
    b.li(t4, 0xffff);
    b.and_(s6, s6, t4);
    b.slli(t5, s7, 3);
    b.add(t5, t5, s2);
    b.st(s6, t5, 0);
    // emit (lhs, value)
    b.slli(t6, s4, 3);
    b.add(t6, t6, s3);
    b.st(s7, t6, 0);
    b.st(s6, t6, 8);
    b.addi(s4, s4, 2);
    b.li(t7, 0x3ffe);
    b.and_(s4, s4, t7);          // wrap the emit ring
    b.addi(s5, s5, 1);
    b.j(stmt);

    // --- getVal: a0 = token char -> a0 = operand value ---
    b.bind(getVal);
    b.li(t8, 'a');
    b.blt(a0, t8, getDigit);
    b.addi(a0, a0, -'a');
    b.slli(a0, a0, 3);
    b.add(a0, a0, s2);
    b.ld(a0, a0, 0);             // variable value
    b.ret();
    b.bind(getDigit);
    b.addi(a0, a0, -'0');        // literal digit
    b.ret();

    Program program = b.build();

    Memory mem;
    const auto source = makeSource(num_statements, params.seed);
    mem.writeBlock(srcBase, source.data(), source.size());
    // Initial variable values 1..26.
    std::vector<Value> symtab;
    for (std::int64_t i = 0; i < 26; ++i)
        symtab.push_back(static_cast<Value>(i + 1));
    mem.writeWords(symBase, symtab);

    return Workload{"gcc", std::move(program), std::move(mem)};
}

} // namespace vpsim
