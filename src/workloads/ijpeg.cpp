/**
 * @file
 * ijpeg mini-benchmark: 8x8 integer block transform with quantization,
 * mirroring SPEC95's ijpeg (JPEG encoder).
 *
 * The program walks an image in 8x8 blocks; for each block it loads the
 * pixels, applies a butterfly-style integer transform to rows then
 * columns, quantizes by a per-coefficient divisor table and stores the
 * coefficients. Loop indices and addresses stride nicely; the pixel data
 * path (sums, differences, divides) is data dependent, matching ijpeg's
 * middling value predictability in the paper.
 */

#include "workloads/workload.hpp"

#include "common/rng.hpp"
#include "workloads/regs.hpp"
#include "vm/program_builder.hpp"

namespace vpsim
{

namespace
{

using namespace regs;

constexpr Addr imageBase = 0x700000;
constexpr Addr workBase = 0x710000;    // 64-word block workspace
constexpr Addr quantBase = 0x720000;   // 64 divisors
constexpr Addr coefBase = 0x730000;    // output coefficients



/** Smooth-ish deterministic test image. */
std::vector<std::uint8_t>
makeImage(std::int64_t imageDim, std::uint64_t seed)
{
    Rng rng(0x1Ca6e5 ^ seed);
    std::vector<std::uint8_t> image(imageDim * imageDim);
    for (std::int64_t y = 0; y < imageDim; ++y) {
        for (std::int64_t x = 0; x < imageDim; ++x) {
            const std::int64_t base =
                128 + ((x * 3 + y * 5) % 64) - 32;
            const std::int64_t noise =
                static_cast<std::int64_t>(rng.nextBelow(17)) - 8;
            std::int64_t v = base + noise;
            if (v < 0)
                v = 0;
            if (v > 255)
                v = 255;
            image[y * imageDim + x] = static_cast<std::uint8_t>(v);
        }
    }
    return image;
}

/** JPEG-flavoured quantization divisors (never zero). */
std::vector<Value>
makeQuant()
{
    std::vector<Value> quant(64);
    for (std::int64_t i = 0; i < 64; ++i) {
        const std::int64_t row = i / 8;
        const std::int64_t col = i % 8;
        quant[i] = 2 + row + col + ((row * col) / 3);
    }
    return quant;
}

} // namespace

Workload
buildIjpeg(const WorkloadParams &params)
{
    // The row stride is baked into the program as a shift, so the image
    // dimension scales in powers of two.
    unsigned dim_shift = 6; // 64x64 at scale 1
    for (unsigned s = params.scale; s > 1; s /= 2)
        ++dim_shift;
    const std::int64_t imageDim = std::int64_t{1} << dim_shift;
    const std::int64_t blocksPerSide = imageDim / 8;
    ProgramBuilder b("ijpeg");

    // s0 = block x, s1 = block y, s2 = frame counter, s3 = energy
    // accumulator, s4 = image base, s5 = work base, s6 = quant base,
    // s7 = coef base, s8 = coef write cursor.
    Label frame = b.newLabel();
    Label blockLoop = b.newLabel();
    Label loadLoop = b.newLabel();
    Label rowLoop = b.newLabel();
    Label colLoop = b.newLabel();
    Label quantLoop = b.newLabel();
    Label nextBlock = b.newLabel();

    b.li(s2, 0);
    b.li(s8, 0);

    b.bind(frame);
    b.addi(s2, s2, 1);
    b.li(s3, 0);
    b.li(s1, 0);                 // block y
    b.li(s0, 0);                 // block x

    b.bind(blockLoop);
    b.li(s4, imageBase);
    b.li(s5, workBase);
    b.li(s6, quantBase);
    b.li(s7, coefBase);

    // --- load 8x8 block into the workspace (row major, 64 words) ---
    // t0 = i (0..63)
    b.li(t0, 0);
    b.bind(loadLoop);
    b.srli(t1, t0, 3);           // local row
    b.andi(t2, t0, 7);           // local col
    b.slli(t3, s1, 3);           // pixel row = by*8 + lrow
    b.add(t3, t3, t1);
    b.slli(t4, s0, 3);           // pixel col = bx*8 + lcol
    b.add(t4, t4, t2);
    b.slli(t5, t3, dim_shift);   // row * imageDim
    b.add(t5, t5, t4);
    b.add(t5, t5, s4);
    b.lbu(t6, t5, 0);            // pixel
    b.addi(t6, t6, -128);        // level shift
    b.slli(t7, t0, 3);
    b.add(t7, t7, s5);
    b.st(t6, t7, 0);             // work[i] = pixel - 128
    b.addi(t0, t0, 1);
    b.li(t8, 64);
    b.blt(t0, t8, loadLoop);

    // --- row transform: 4 butterfly pairs per row ---
    // t0 = row index
    b.li(t0, 0);
    b.bind(rowLoop);
    b.slli(t1, t0, 6);           // row * 8 words * 8 bytes
    b.add(t1, t1, s5);           // row base address
    // pairs (0,7) (1,6) (2,5) (3,4): a' = a+b, b' = (a-b)*k >> 3
    for (int pair = 0; pair < 4; ++pair) {
        const int lo = pair;
        const int hi = 7 - pair;
        b.ld(t2, t1, lo * 8);
        b.ld(t3, t1, hi * 8);
        b.add(t4, t2, t3);
        b.sub(t5, t2, t3);
        b.li(t6, 11 + pair * 4);
        b.mul(t5, t5, t6);
        b.srai(t5, t5, 3);
        b.st(t4, t1, lo * 8);
        b.st(t5, t1, hi * 8);
    }
    b.addi(t0, t0, 1);
    b.li(t8, 8);
    b.blt(t0, t8, rowLoop);

    // --- column transform ---
    b.li(t0, 0);
    b.bind(colLoop);
    b.slli(t1, t0, 3);           // column offset in bytes
    b.add(t1, t1, s5);
    for (int pair = 0; pair < 4; ++pair) {
        const int lo = pair;
        const int hi = 7 - pair;
        b.ld(t2, t1, lo * 64);
        b.ld(t3, t1, hi * 64);
        b.add(t4, t2, t3);
        b.sub(t5, t2, t3);
        b.li(t6, 13 + pair * 4);
        b.mul(t5, t5, t6);
        b.srai(t5, t5, 3);
        b.st(t4, t1, lo * 64);
        b.st(t5, t1, hi * 64);
    }
    b.addi(t0, t0, 1);
    b.li(t8, 8);
    b.blt(t0, t8, colLoop);

    // --- quantize and store coefficients ---
    b.li(t0, 0);
    b.bind(quantLoop);
    b.slli(t1, t0, 3);
    b.add(t2, t1, s5);
    b.ld(t3, t2, 0);             // coefficient
    b.add(t4, t1, s6);
    b.ld(t5, t4, 0);             // divisor
    b.div(t6, t3, t5);
    // energy += |q|
    b.srai(t7, t6, 63);
    b.xor_(t8, t6, t7);
    b.sub(t8, t8, t7);
    b.add(s3, s3, t8);
    // coef[cursor++] = q
    b.slli(a0, s8, 3);
    b.add(a0, a0, s7);
    b.st(t6, a0, 0);
    b.addi(s8, s8, 1);
    b.andi(s8, s8, 0xfff);       // wrap the output ring
    b.addi(t0, t0, 1);
    b.li(a1, 64);
    b.blt(t0, a1, quantLoop);

    b.bind(nextBlock);
    b.addi(s0, s0, 1);
    b.li(t8, blocksPerSide);
    b.blt(s0, t8, blockLoop);
    b.li(s0, 0);
    b.addi(s1, s1, 1);
    b.blt(s1, t8, blockLoop);
    b.j(frame);

    Program program = b.build();

    Memory mem;
    const auto image = makeImage(imageDim, params.seed);
    mem.writeBlock(imageBase, image.data(), image.size());
    mem.writeWords(quantBase, makeQuant());

    return Workload{"ijpeg", std::move(program), std::move(mem)};
}

} // namespace vpsim
