/**
 * @file
 * vortex mini-benchmark: object-oriented database transactions, mirroring
 * SPEC95's vortex (a single-user OO database).
 *
 * Transactions round-robin over four record tables. The per-table insert
 * code is inlined (one body per table, as an optimizing compiler would
 * produce), so each body's record count, record address and index cursor
 * are perfect arithmetic progressions at their static instruction —
 * which is why the real vortex shows the largest fraction of
 * value-predictable long-distance dependencies in the paper (Fig 3.5).
 * Every fourth transaction walks the newest records' predecessor chain
 * through a shared lookup routine.
 */

#include "workloads/workload.hpp"

#include <algorithm>

#include "workloads/regs.hpp"
#include "vm/program_builder.hpp"

namespace vpsim
{

namespace
{

using namespace regs;

constexpr Addr tablesBase = 0xa00000;   // 4 tables x capacity x 32 bytes
constexpr Addr indexBase = 0xa80000;    // 4 index arrays
constexpr Addr countsBase = 0xaf0000;   // 4 record counts
constexpr Addr prevBase = 0xaf0100;     // 4 last-record pointers
constexpr Addr stackBase = 0xb00000;

constexpr std::int64_t tableStride = 0x20000;
constexpr std::int64_t indexStride = 0x4000;


} // namespace

Workload
buildVortex(const WorkloadParams &params)
{
    // Record capacity scales, bounded by the per-table address stride.
    const std::int64_t capacity = std::min<std::int64_t>(
        768 * static_cast<std::int64_t>(params.scale),
        tableStride / 32 - 1);
    ProgramBuilder b("vortex");

    // s0 = txn id, s1 = tables base, s2 = index base, s3 = counts base,
    // s4 = prev-pointer base, s5 = checksum, s6 = lookups done,
    // s7 = resets, s9 = chain sum.
    Label outer = b.newLabel();
    Label txnLoop = b.newLabel();
    Label lookupFn = b.newLabel();
    Label lookupLoop = b.newLabel();
    Label lookupDone = b.newLabel();
    Label noLookup = b.newLabel();
    Label resetDb = b.newLabel();
    Label resetLoop = b.newLabel();
    Label afterInsert = b.newLabel();
    Label insertBody[4] = {b.newLabel(), b.newLabel(), b.newLabel(),
                           b.newLabel()};
    Label dispatch[4] = {b.newLabel(), b.newLabel(), b.newLabel(),
                         b.newLabel()};

    b.li(s0, 0);
    b.li(s5, 0);
    b.li(s6, 0);
    b.li(s7, 0);

    b.bind(outer);
    b.li(sp, stackBase);

    // Base addresses are re-materialized per transaction, as compiled
    // OO code reloads object/table handles on every method entry. Each
    // reload is a perfectly predictable producer whose consumers sit
    // 4-40 instructions away (the paper's "predictable and DID >= 4"
    // population that makes vortex the biggest wide-fetch winner).
    b.bind(txnLoop);
    b.li(s1, tablesBase);
    b.li(s2, indexBase);
    b.li(s3, countsBase);
    b.li(s4, prevBase);
    b.addi(s0, s0, 1);           // txn id (perfect stride)
    b.andi(t0, s0, 3);           // table for this txn
    // Two-level branch tree to the inlined insert body.
    b.li(t1, 2);
    b.blt(t0, t1, dispatch[0]);
    b.li(t1, 3);
    b.blt(t0, t1, insertBody[2]);
    b.j(insertBody[3]);
    b.bind(dispatch[0]);
    b.li(t1, 1);
    b.blt(t0, t1, insertBody[0]);
    b.j(insertBody[1]);
    // dispatch[1..3] unused but kept for symmetry with the source's
    // switch lowering.
    b.bind(dispatch[1]);
    b.bind(dispatch[2]);
    b.bind(dispatch[3]);

    // --- four inlined insert bodies, one per table ---
    for (int table = 0; table < 4; ++table) {
        b.bind(insertBody[table]);
        const std::int64_t countOff = table * 8;
        const std::int64_t tableOff = table * tableStride;
        const std::int64_t indexOff = table * indexStride;
        const std::int64_t prevOff = table * 8;

        b.ld(t1, s3, countOff);      // count (stride +1 at this pc)
        b.slli(t4, t1, 5);
        b.add(t3, t4, s1);
        b.addi(t3, t3, tableOff);    // record address (stride +32)
        // fields
        b.st(s0, t3, 0);             // id = txn id
        b.slli(t5, s0, 1);
        b.addi(t5, t5, 7);
        b.st(t5, t3, 8);             // derived key
        b.ld(t7, s4, prevOff);       // previous record pointer
        b.st(t7, t3, 16);            // link to predecessor
        b.add(t8, s0, t1);
        b.st(t8, t3, 24);            // checksum field
        b.add(s5, s5, t8);
        // index append: index[table][count] = record address
        b.slli(t4, t1, 3);
        b.add(t6, t4, s2);
        b.addi(t6, t6, indexOff);
        b.st(t3, t6, 0);
        // prev[table] = record; counts[table]++
        b.st(t3, s4, prevOff);
        b.addi(t1, t1, 1);
        b.st(t1, s3, countOff);
        b.j(afterInsert);
    }

    b.bind(afterInsert);
    // Run a lookup every 4th transaction.
    b.andi(t0, s0, 3);
    b.li(t1, 3);
    b.bne(t0, t1, noLookup);
    b.andi(a0, s0, 3);
    b.call(lookupFn);
    b.add(s9, s9, a0);
    b.addi(s6, s6, 1);
    b.bind(noLookup);
    // Reset the database when table 0 fills.
    b.ld(t2, s3, 0);             // counts[0]
    b.li(t3, capacity);
    b.blt(t2, t3, txnLoop);
    b.j(resetDb);

    // --- lookupFn: a0 = table -> a0 = sum over the last 8 records ---
    b.bind(lookupFn);
    b.slli(t0, a0, 3);
    b.add(t0, t0, s4);
    b.ld(t1, t0, 0);             // current = prev[table]
    b.li(t2, 0);                 // sum
    b.li(t3, 8);                 // remaining hops
    b.bind(lookupLoop);
    b.beq(t1, zero, lookupDone);
    b.beq(t3, zero, lookupDone);
    b.ld(t4, t1, 8);             // derived key
    b.add(t2, t2, t4);
    b.ld(t5, t1, 24);            // checksum field
    b.add(t2, t2, t5);
    b.ld(t1, t1, 16);            // follow the predecessor link
    b.addi(t3, t3, -1);
    b.j(lookupLoop);
    b.bind(lookupDone);
    b.mv(a0, t2);
    b.ret();

    // --- resetDb: clear counts and prev pointers (delete all records) ---
    b.bind(resetDb);
    b.addi(s7, s7, 1);
    b.li(t0, 0);
    b.bind(resetLoop);
    b.slli(t1, t0, 3);
    b.add(t2, t1, s3);
    b.st(zero, t2, 0);
    b.add(t2, t1, s4);
    b.st(zero, t2, 0);
    b.addi(t0, t0, 1);
    b.li(t3, 4);
    b.blt(t0, t3, resetLoop);
    b.j(outer);

    Program program = b.build();

    Memory mem;
    return Workload{"vortex", std::move(program), std::move(mem)};
}

} // namespace vpsim
