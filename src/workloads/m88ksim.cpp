/**
 * @file
 * m88ksim mini-benchmark: an instruction-set simulator for a tiny guest
 * CPU, mirroring SPEC95's m88ksim (a Motorola 88100 simulator).
 *
 * The host program runs a classic fetch/decode/dispatch loop over a guest
 * program stored in data memory, with a jump table of handler routines
 * (indirect jumps), per-opcode statistics counters, a guest register file
 * and guest memory. Simulator-style code is rich in monotonic counters and
 * regular address arithmetic, which is what makes the real m88ksim one of
 * the most value-predictable SPEC programs (paper §3.3, Figure 3.5).
 */

#include "workloads/workload.hpp"

#include "workloads/regs.hpp"
#include "vm/program_builder.hpp"

namespace vpsim
{

namespace
{

using namespace regs;

// Data memory layout.
constexpr Addr guestProgBase = 0x200000;
constexpr Addr guestRegsBase = 0x210000;
constexpr Addr guestMemBase = 0x220000;
constexpr Addr jumpTableBase = 0x230000;

// Guest instruction encoding: byte 0 opcode, byte 1 rd, byte 2 rs1,
// byte 3 rs2, bytes 4-7 signed immediate.
constexpr std::uint64_t
guestInst(std::uint64_t op, std::uint64_t rd, std::uint64_t rs1,
          std::uint64_t rs2, std::int32_t imm)
{
    return op | (rd << 8) | (rs1 << 16) | (rs2 << 24) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(imm))
            << 32);
}

constexpr std::uint64_t gAdd = 0;
constexpr std::uint64_t gAddi = 1;
constexpr std::uint64_t gLoad = 2;
constexpr std::uint64_t gStore = 3;
constexpr std::uint64_t gBnez = 4;
constexpr std::uint64_t gHalt = 5;
constexpr std::uint64_t gSub = 6;

} // namespace

Workload
buildM88ksim(const WorkloadParams &params)
{
    const auto guest_iterations =
        static_cast<std::int32_t>(64 * params.scale);
    ProgramBuilder b("m88ksim");

    // Register roles:
    //  s0 = guest pc, s1 = guest program base, s2 = guest regs base,
    //  s3 = guest memory base, s4 = simulated cycle counter,
    //  s5 = jump table base, s7 = guest run count,
    //  s8 = total dispatched instructions, c0-c5 = per-opcode counters.
    Label mainloop = b.newLabel();
    Label opAdd = b.newLabel();
    Label opAddi = b.newLabel();
    Label opLoad = b.newLabel();
    Label opStore = b.newLabel();
    Label opBnez = b.newLabel();
    Label opHalt = b.newLabel();
    Label opSub = b.newLabel();
    Label bnezNotTaken = b.newLabel();

    // init
    b.li(s0, 0);
    b.li(s4, 0);
    b.li(s7, 0);
    b.li(s8, 0);

    // Main simulator loop. Base addresses are re-materialized at the loop
    // top (as a compiler would rematerialize constants / reload them after
    // calls), keeping dependence distances bounded and giving the trace
    // its characteristic stream of constant-producing instructions.
    b.bind(mainloop);
    b.li(s1, static_cast<std::int64_t>(guestProgBase));
    b.li(s2, static_cast<std::int64_t>(guestRegsBase));
    b.li(s3, static_cast<std::int64_t>(guestMemBase));
    b.li(s5, static_cast<std::int64_t>(jumpTableBase));

    // Simulation budget check: the cycle counter produced at the top of
    // the previous iteration is consumed here, ~30 instructions later (a
    // long-DID, perfectly stride-predictable dependence).
    b.li(s9, 1 << 30);
    b.bge(s4, s9, opHalt);

    // Fetch guest instruction.
    b.slli(t0, s0, 3);
    b.add(t0, t0, s1);
    b.ld(t1, t0, 0);
    // Bookkeeping counters (stride-predictable, long DID).
    b.addi(s4, s4, 1);
    b.addi(s8, s8, 1);
    // Decode fields.
    b.andi(t2, t1, 0xff);        // opcode
    b.srli(t3, t1, 8);
    b.andi(t3, t3, 0xf);         // rd
    b.srli(t4, t1, 16);
    b.andi(t4, t4, 0xf);         // rs1
    b.srli(t5, t1, 24);
    b.andi(t5, t5, 0xf);         // rs2
    b.srai(t6, t1, 32);          // imm
    // Dispatch through the handler jump table.
    b.slli(t7, t2, 3);
    b.add(t7, t7, s5);
    b.ld(t7, t7, 0);
    b.jr(t7);

    // gr[rd] = gr[rs1] + gr[rs2]
    b.bind(opAdd);
    b.addi(c0, c0, 1);  // per-opcode retired counter
    b.slli(a0, t4, 3);
    b.add(a0, a0, s2);
    b.ld(a0, a0, 0);
    b.slli(a1, t5, 3);
    b.add(a1, a1, s2);
    b.ld(a1, a1, 0);
    b.add(a0, a0, a1);
    b.slli(a2, t3, 3);
    b.add(a2, a2, s2);
    b.st(a0, a2, 0);
    b.addi(s0, s0, 1);
    b.j(mainloop);

    // gr[rd] = gr[rs1] + imm
    b.bind(opAddi);
    b.addi(c1, c1, 1);  // per-opcode retired counter
    b.slli(a0, t4, 3);
    b.add(a0, a0, s2);
    b.ld(a0, a0, 0);
    b.add(a0, a0, t6);
    b.slli(a2, t3, 3);
    b.add(a2, a2, s2);
    b.st(a0, a2, 0);
    b.addi(s0, s0, 1);
    b.j(mainloop);

    // gr[rd] = gmem[gr[rs1] + imm]
    b.bind(opLoad);
    b.addi(c2, c2, 1);  // per-opcode retired counter
    b.slli(a0, t4, 3);
    b.add(a0, a0, s2);
    b.ld(a0, a0, 0);
    b.add(a0, a0, t6);
    b.andi(a0, a0, 0xff8);       // wrap into guest memory, 8-aligned
    b.add(a0, a0, s3);
    b.ld(a0, a0, 0);
    b.slli(a2, t3, 3);
    b.add(a2, a2, s2);
    b.st(a0, a2, 0);
    b.addi(s0, s0, 1);
    b.j(mainloop);

    // gmem[gr[rs1] + imm] = gr[rd]
    b.bind(opStore);
    b.addi(c3, c3, 1);  // per-opcode retired counter
    b.slli(a0, t4, 3);
    b.add(a0, a0, s2);
    b.ld(a0, a0, 0);
    b.add(a0, a0, t6);
    b.andi(a0, a0, 0xff8);
    b.add(a0, a0, s3);
    b.slli(a2, t3, 3);
    b.add(a2, a2, s2);
    b.ld(a1, a2, 0);
    b.st(a1, a0, 0);
    b.addi(s0, s0, 1);
    b.j(mainloop);

    // if (gr[rd] != 0) gpc += imm else gpc++
    b.bind(opBnez);
    b.addi(c4, c4, 1);           // per-opcode retired counter
    b.slli(a0, t3, 3);
    b.add(a0, a0, s2);
    b.ld(a0, a0, 0);
    b.beq(a0, zero, bnezNotTaken);
    b.add(s0, s0, t6);
    b.j(mainloop);
    b.bind(bnezNotTaken);
    b.addi(s0, s0, 1);
    b.j(mainloop);

    // gr[rd] = gr[rs1] - gr[rs2]
    b.bind(opSub);
    b.addi(c5, c5, 1);  // per-opcode retired counter
    b.slli(a0, t4, 3);
    b.add(a0, a0, s2);
    b.ld(a0, a0, 0);
    b.slli(a1, t5, 3);
    b.add(a1, a1, s2);
    b.ld(a1, a1, 0);
    b.sub(a0, a0, a1);
    b.slli(a2, t3, 3);
    b.add(a2, a2, s2);
    b.st(a0, a2, 0);
    b.addi(s0, s0, 1);
    b.j(mainloop);

    // Guest halt: restart the guest program (outer benchmark loop).
    b.bind(opHalt);
    b.li(s0, 0);
    b.addi(s7, s7, 1);
    b.j(mainloop);

    Program program = b.build();

    // Handler table and guest program image.
    Memory mem;
    mem.writeWords(jumpTableBase, {
        b.boundAddr(opAdd), b.boundAddr(opAddi), b.boundAddr(opLoad),
        b.boundAddr(opStore), b.boundAddr(opBnez), b.boundAddr(opHalt),
        b.boundAddr(opSub),
    });

    // Guest program: a checksum-and-copy loop. Each loop slot uses a
    // distinct guest opcode, so each host handler serves one loop slot
    // and its guest-pc bookkeeping is steady at that handler's pc (the
    // common case in a real ISS, where hot handlers correlate with hot
    // guest instructions).
    //   r1 = 64 iterations; r2 = byte offset; r4 = 1; r5 = running sum
    //   loop: r3 = gmem[r2]; r5 += r3; gmem[r2+512] = r5;
    //         r2 += 8; r1 -= r4; bnez r1 -> loop
    //   store r5; halt
    mem.writeWords(guestProgBase, {
        guestInst(gAddi, 1, 0, 0, guest_iterations),
        guestInst(gAddi, 2, 0, 0, 0),
        guestInst(gAddi, 5, 0, 0, 0),
        guestInst(gAddi, 4, 0, 0, 1),
        guestInst(gLoad, 3, 2, 0, 0),
        guestInst(gAdd, 5, 5, 3, 0),
        guestInst(gStore, 5, 2, 0, 512),
        guestInst(gAddi, 2, 2, 0, 8),
        guestInst(gSub, 1, 1, 4, 0),
        guestInst(gBnez, 1, 0, 0, -5),
        guestInst(gStore, 5, 0, 0, 1024),
        guestInst(gHalt, 0, 0, 0, 0),
    });

    // Guest data memory: a deterministic pattern to checksum.
    std::vector<Value> guest_data;
    guest_data.reserve(64);
    for (std::uint64_t i = 0; i < 64; ++i)
        guest_data.push_back(i * 0x9e37 + (i ^ (0x5a + params.seed)));
    mem.writeWords(guestMemBase, guest_data);

    return Workload{"m88ksim", std::move(program), std::move(mem)};
}

} // namespace vpsim
