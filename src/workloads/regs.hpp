/**
 * @file
 * Register-name conventions shared by the workload sources.
 *
 * r0 is hardwired zero; r1 is the link register; r2 the stack pointer;
 * t0-t8 are scratch; s0-s9 are long-lived locals; a0-a3 argument/return
 * registers for the internal calling convention.
 */

#ifndef VPSIM_WORKLOADS_REGS_HPP
#define VPSIM_WORKLOADS_REGS_HPP

#include "common/types.hpp"

namespace vpsim::regs
{

inline constexpr RegIndex zero = 0;
inline constexpr RegIndex ra = 1;
inline constexpr RegIndex sp = 2;

inline constexpr RegIndex t0 = 3;
inline constexpr RegIndex t1 = 4;
inline constexpr RegIndex t2 = 5;
inline constexpr RegIndex t3 = 6;
inline constexpr RegIndex t4 = 7;
inline constexpr RegIndex t5 = 8;
inline constexpr RegIndex t6 = 9;
inline constexpr RegIndex t7 = 10;
inline constexpr RegIndex t8 = 11;

inline constexpr RegIndex s0 = 12;
inline constexpr RegIndex s1 = 13;
inline constexpr RegIndex s2 = 14;
inline constexpr RegIndex s3 = 15;
inline constexpr RegIndex s4 = 16;
inline constexpr RegIndex s5 = 17;
inline constexpr RegIndex s6 = 18;
inline constexpr RegIndex s7 = 19;
inline constexpr RegIndex s8 = 20;
inline constexpr RegIndex s9 = 21;

inline constexpr RegIndex a0 = 22;
inline constexpr RegIndex a1 = 23;
inline constexpr RegIndex a2 = 24;
inline constexpr RegIndex a3 = 25;

/** Extra long-lived counters (c0-c5) for bookkeeping-heavy workloads. */
inline constexpr RegIndex c0 = 26;
inline constexpr RegIndex c1 = 27;
inline constexpr RegIndex c2 = 28;
inline constexpr RegIndex c3 = 29;
inline constexpr RegIndex c4 = 30;
inline constexpr RegIndex c5 = 31;

} // namespace vpsim::regs

#endif // VPSIM_WORKLOADS_REGS_HPP
