#include "workloads/workload.hpp"

#include "common/logging.hpp"
#include "vm/interpreter.hpp"

namespace vpsim
{

const std::vector<std::string> &
workloadNames()
{
    static const std::vector<std::string> names = {
        "go", "m88ksim", "gcc", "compress", "li", "ijpeg", "perl", "vortex",
    };
    return names;
}

std::string
workloadDescription(const std::string &name)
{
    if (name == "go")
        return "Game playing: positional board evaluation with "
               "captures (SPEC: the game of go).";
    if (name == "m88ksim")
        return "A simulator for a small guest CPU: fetch/decode/"
               "dispatch with a handler jump table (SPEC: Motorola "
               "88100 simulator).";
    if (name == "gcc")
        return "Tokenizer + expression evaluator + code emission "
               "(SPEC: GNU C compiler 2.5.3).";
    if (name == "compress")
        return "Adaptive Lempel-Ziv coding over a hash-probed "
               "dictionary (SPEC: compress95).";
    if (name == "li")
        return "Cons-cell list processing with recursion and pointer "
               "chasing (SPEC: xlisp interpreter).";
    if (name == "ijpeg")
        return "8x8 integer block transform with quantization "
               "(SPEC: JPEG encoder).";
    if (name == "perl")
        return "Anagram search via letter-count signatures and "
               "hashing (SPEC: perl anagram script).";
    if (name == "vortex")
        return "Single-user object-oriented database transactions "
               "over indexed record tables (SPEC: vortex).";
    fatal("unknown workload '" + name + "'");
}

Workload
buildWorkload(const std::string &name, const WorkloadParams &params)
{
    fatalIf(params.scale == 0, "workload scale must be positive");
    if (name == "go")
        return buildGo(params);
    if (name == "m88ksim")
        return buildM88ksim(params);
    if (name == "gcc")
        return buildGcc(params);
    if (name == "compress")
        return buildCompress(params);
    if (name == "li")
        return buildLi(params);
    if (name == "ijpeg")
        return buildIjpeg(params);
    if (name == "perl")
        return buildPerl(params);
    if (name == "vortex")
        return buildVortex(params);
    fatal("unknown workload '" + name + "'");
}

std::vector<TraceRecord>
captureWorkloadTrace(const std::string &name, std::uint64_t max_insts,
                     const WorkloadParams &params)
{
    Workload workload = buildWorkload(name, params);
    return captureTrace(workload.program, std::move(workload.memory),
                        max_insts);
}

Status
captureWorkloadTraceChunked(
    const std::string &name, std::uint64_t max_insts,
    const WorkloadParams &params, std::uint64_t chunk_insts,
    const std::function<Status(const std::vector<TraceRecord> &)> &sink)
{
    Workload workload = buildWorkload(name, params);
    return captureTraceChunked(workload.program,
                               std::move(workload.memory), max_insts,
                               chunk_insts, sink);
}

} // namespace vpsim
