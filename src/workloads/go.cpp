/**
 * @file
 * go mini-benchmark: positional board evaluation, mirroring SPEC95's go.
 *
 * The program repeatedly scans a 19x19 board (with a sentinel border),
 * scores every empty point from its four neighbours and a positional
 * weight table, plays the best-scoring move, and occasionally captures
 * (clears) surrounded stones. Scores are data dependent and the
 * comparison branches are hard to predict, which mirrors why the real go
 * is the most branch-hostile, least value-predictable SPEC program.
 */

#include "workloads/workload.hpp"

#include "common/rng.hpp"
#include "workloads/regs.hpp"
#include "vm/program_builder.hpp"

namespace vpsim
{

namespace
{

using namespace regs;

constexpr Addr boardBase = 0x500000;
constexpr Addr weightBase = 0x510000;

constexpr std::int64_t dim = 21;              // 19x19 plus border
constexpr std::int64_t cells = dim * dim;

constexpr std::uint8_t empty = 0;
constexpr std::uint8_t border = 3;

/** Initial board: border ring, sparse deterministic stones. */
std::vector<std::uint8_t>
makeBoard(std::uint64_t seed)
{
    Rng rng(0x60606060 ^ seed);
    std::vector<std::uint8_t> board(cells, empty);
    for (std::int64_t i = 0; i < dim; ++i) {
        board[i] = border;
        board[(dim - 1) * dim + i] = border;
        board[i * dim] = border;
        board[i * dim + dim - 1] = border;
    }
    for (std::int64_t r = 1; r < dim - 1; ++r) {
        for (std::int64_t c = 1; c < dim - 1; ++c) {
            if (rng.nextChance(1, 6))
                board[r * dim + c] =
                    static_cast<std::uint8_t>(1 + rng.nextBelow(2));
        }
    }
    return board;
}

/** Positional weights favouring the centre. */
std::vector<Value>
makeWeights()
{
    std::vector<Value> weights(cells, 0);
    for (std::int64_t r = 0; r < dim; ++r) {
        for (std::int64_t c = 0; c < dim; ++c) {
            const std::int64_t dr = r < dim / 2 ? r : dim - 1 - r;
            const std::int64_t dc = c < dim / 2 ? c : dim - 1 - c;
            weights[r * dim + c] =
                static_cast<Value>(dr < dc ? dr : dc);
        }
    }
    return weights;
}

} // namespace

Workload
buildGo(const WorkloadParams &params)
{
    const std::int64_t movesPerGame =
        160 * static_cast<std::int64_t>(params.scale);
    ProgramBuilder b("go");

    // s0 = cell index, s1 = board base, s2 = weight base,
    // s3 = best score, s4 = best index, s5 = colour to move (1/2),
    // s6 = move count, s7 = scan score accumulator, s8 = games played.
    Label newGame = b.newLabel();
    Label scanStart = b.newLabel();
    Label scanLoop = b.newLabel();
    Label scoreIt = b.newLabel();
    Label notMine1 = b.newLabel();
    Label scored1 = b.newLabel();
    Label notMine2 = b.newLabel();
    Label scored2 = b.newLabel();
    Label notMine3 = b.newLabel();
    Label scored3 = b.newLabel();
    Label notMine4 = b.newLabel();
    Label scored4 = b.newLabel();
    Label notBest = b.newLabel();
    Label nextCell = b.newLabel();
    Label scanDone = b.newLabel();
    Label play = b.newLabel();
    Label captureScan = b.newLabel();
    Label capLoop = b.newLabel();
    Label capNext = b.newLabel();
    Label capClear = b.newLabel();
    Label capDone = b.newLabel();
    Label resetBoard = b.newLabel();
    Label resetLoop = b.newLabel();

    b.li(s8, 0);

    b.bind(newGame);
    b.li(s5, 1);                 // black moves first
    b.li(s6, 0);

    b.bind(scanStart);
    b.li(s1, boardBase);
    b.li(s2, weightBase);
    b.li(s3, -1);                // best score
    b.li(s4, 0);                 // best index
    b.li(s7, 0);
    b.li(s0, dim + 1);           // first interior cell

    b.bind(scanLoop);
    b.add(t0, s0, s1);
    b.lbu(t1, t0, 0);            // cell
    b.bne(t1, zero, nextCell);   // only score empty points

    b.bind(scoreIt);
    // Score = weights[idx] + neighbour affinity.
    b.slli(t2, s0, 3);
    b.add(t2, t2, s2);
    b.ld(t3, t2, 0);             // score = weight[idx]
    // North neighbour.
    b.lbu(t4, t0, -dim);
    b.bne(t4, s5, notMine1);
    b.addi(t3, t3, 3);           // friendly: +3
    b.j(scored1);
    b.bind(notMine1);
    b.bne(t4, zero, scored1);
    b.addi(t3, t3, 1);           // empty: +1
    b.bind(scored1);
    // South neighbour.
    b.lbu(t4, t0, dim);
    b.bne(t4, s5, notMine2);
    b.addi(t3, t3, 3);
    b.j(scored2);
    b.bind(notMine2);
    b.bne(t4, zero, scored2);
    b.addi(t3, t3, 1);
    b.bind(scored2);
    // West neighbour.
    b.lbu(t4, t0, -1);
    b.bne(t4, s5, notMine3);
    b.addi(t3, t3, 3);
    b.j(scored3);
    b.bind(notMine3);
    b.bne(t4, zero, scored3);
    b.addi(t3, t3, 1);
    b.bind(scored3);
    // East neighbour.
    b.lbu(t4, t0, 1);
    b.bne(t4, s5, notMine4);
    b.addi(t3, t3, 3);
    b.j(scored4);
    b.bind(notMine4);
    b.bne(t4, zero, scored4);
    b.addi(t3, t3, 1);
    b.bind(scored4);
    b.add(s7, s7, t3);           // accumulate scan score
    b.bge(s3, t3, notBest);      // keep the best move
    b.mv(s3, t3);
    b.mv(s4, s0);
    b.bind(notBest);

    b.bind(nextCell);
    b.addi(s0, s0, 1);
    b.li(t5, cells - dim - 1);
    b.blt(s0, t5, scanLoop);
    b.j(scanDone);

    b.bind(scanDone);
    // Play the best move (if any empty point was found).
    b.blt(s3, zero, resetBoard);

    b.bind(play);
    b.add(t0, s4, s1);
    b.sb(s5, t0, 0);             // place stone
    b.xori(s5, s5, 3);           // switch colour 1<->2
    b.addi(s6, s6, 1);
    // Every 8th move, run a capture sweep.
    b.andi(t1, s6, 7);
    b.bne(t1, zero, capDone);

    b.bind(captureScan);
    b.li(s0, dim + 1);
    b.bind(capLoop);
    b.add(t0, s0, s1);
    b.lbu(t1, t0, 0);
    b.beq(t1, zero, capNext);
    b.li(t8, 3);
    b.beq(t1, t8, capNext);      // skip border cells
    // A stone with no empty neighbour is "captured".
    b.lbu(t2, t0, -dim);
    b.beq(t2, zero, capNext);
    b.lbu(t2, t0, dim);
    b.beq(t2, zero, capNext);
    b.lbu(t2, t0, -1);
    b.beq(t2, zero, capNext);
    b.lbu(t2, t0, 1);
    b.beq(t2, zero, capNext);
    b.bind(capClear);
    b.sb(zero, t0, 0);
    b.bind(capNext);
    b.addi(s0, s0, 1);
    b.li(t5, cells - dim - 1);
    b.blt(s0, t5, capLoop);
    b.bind(capDone);

    b.li(t6, movesPerGame);
    b.blt(s6, t6, scanStart);

    // Game over: reset the board to the initial position and start again.
    b.bind(resetBoard);
    b.addi(s8, s8, 1);
    b.li(s0, 0);
    b.li(t7, boardBase + cells); // initial copy stored after the board
    b.bind(resetLoop);
    b.add(t0, s0, t7);
    b.lbu(t1, t0, 0);
    b.add(t2, s0, s1);
    b.sb(t1, t2, 0);
    b.addi(s0, s0, 1);
    b.li(t5, cells);
    b.blt(s0, t5, resetLoop);
    b.j(newGame);

    Program program = b.build();

    Memory mem;
    const auto board = makeBoard(params.seed);
    mem.writeBlock(boardBase, board.data(), board.size());
    // Pristine copy used by the reset loop.
    mem.writeBlock(boardBase + cells, board.data(), board.size());
    mem.writeWords(weightBase, makeWeights());

    return Workload{"go", std::move(program), std::move(mem)};
}

} // namespace vpsim
