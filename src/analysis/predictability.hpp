/**
 * @file
 * Joint value-predictability x DID analysis (paper §3.3, Figure 3.5).
 *
 * Every dependence arc of the trace-wide DFG is classified by whether its
 * producer's value was correctly predicted by an infinite stride
 * prediction table at that dynamic instance; predictable arcs are further
 * bucketed by their DID. The paper highlights the "predictable and DID >=
 * 4" fraction: those are the dependencies that only a high-bandwidth
 * fetch engine can convert into speedup.
 */

#ifndef VPSIM_ANALYSIS_PREDICTABILITY_HPP
#define VPSIM_ANALYSIS_PREDICTABILITY_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "predictor/value_predictor.hpp"
#include "trace/record.hpp"

namespace vpsim
{

/** Figure 3.5 style joint distribution for one trace. */
struct PredictabilityAnalysis
{
    std::uint64_t totalArcs = 0;
    /** Arcs whose producer value the stride predictor got wrong. */
    double fracUnpredictable = 0.0;
    /** Predictable arcs with DID == 1, 2, 3. */
    double fracPredictableDid1 = 0.0;
    double fracPredictableDid2 = 0.0;
    double fracPredictableDid3 = 0.0;
    /** Predictable arcs with DID >= 4 (the headline fraction). */
    double fracPredictableDid4Plus = 0.0;

    /** All predictable arcs regardless of distance. */
    double
    fracPredictable() const
    {
        return fracPredictableDid1 + fracPredictableDid2 +
               fracPredictableDid3 + fracPredictableDid4Plus;
    }

    /** Predictable arcs too short for a 4-wide fetch to exploit. */
    double
    fracPredictableShort() const
    {
        return fracPredictableDid1 + fracPredictableDid2 +
               fracPredictableDid3;
    }
};

/**
 * Run the joint analysis over @p records.
 *
 * @param records The trace, in program order.
 * @param predictor The raw predictor marking arcs; defaults to an
 *        infinite stride predictor when null (the paper's choice).
 */
PredictabilityAnalysis
analyzePredictability(const std::vector<TraceRecord> &records,
                      ValuePredictor *predictor = nullptr);

} // namespace vpsim

#endif // VPSIM_ANALYSIS_PREDICTABILITY_HPP
