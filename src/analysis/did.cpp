#include "analysis/did.hpp"

#include "common/invariant.hpp"
#include "isa/instruction.hpp"

namespace vpsim
{

std::vector<std::uint64_t>
didHistogramBounds()
{
    return {1, 2, 3, 7, 15, 31, 63};
}

DidCollector::DidCollector()
    : hist(didHistogramBounds()),
      lastWriter(numArchRegs, invalidSeqNum)
{
}

void
DidCollector::observe(const TraceRecord &record)
{
    const auto consume = [&](RegIndex reg) {
        if (reg == invalidReg || reg == 0)
            return;
        const SeqNum producer = lastWriter[reg];
        if (producer == invalidSeqNum)
            return;
        const std::uint64_t did = record.seq - producer;
        hist.add(did);
        ++arcsObserved;
        if (did >= 4)
            ++arcsAtLeast4;
        if (did <= 256) {
            ++trimmedArcs;
            trimmedSum += static_cast<long double>(did);
        }
    };
    consume(record.rs1);
    consume(record.rs2);

    if (record.producesValue())
        lastWriter[record.rd] = record.seq;
}

void
DidCollector::observe(TraceSpan records)
{
    for (const TraceRecord &record : records)
        observe(record);
}

DidAnalysis
DidCollector::finish() const
{
    DidAnalysis analysis;
    analysis.distribution = hist;
    analysis.totalArcs = hist.totalSamples();
    // The histogram must account for every dependence arc we fed it:
    // its total mass equals the dynamic consumer-operand count.
    checkInvariant(InvariantLevel::Cheap,
                   analysis.totalArcs == arcsObserved,
                   "did.histogram_mass", [&] {
                       return "histogram holds " +
                              std::to_string(analysis.totalArcs) +
                              " arcs but " +
                              std::to_string(arcsObserved) +
                              " were observed";
                   });
    analysis.averageDid = hist.mean();
    analysis.averageDidTrimmed = trimmedArcs == 0
        ? 0.0
        : static_cast<double>(trimmedSum / trimmedArcs);
    analysis.fracDidAtLeast4 = analysis.totalArcs == 0
        ? 0.0
        : static_cast<double>(arcsAtLeast4) /
          static_cast<double>(analysis.totalArcs);
    return analysis;
}

DidAnalysis
analyzeDid(TraceSpan records)
{
    DidCollector collector;
    collector.observe(records);
    return collector.finish();
}

DidAnalysis
analyzeDid(TraceSource &source)
{
    // The collector keys arcs on each record's own seq field, so
    // block-at-a-time delivery needs no cross-block bookkeeping.
    DidCollector collector;
    source.reset();
    TraceSpan block;
    while (source.nextBlock(block))
        collector.observe(block);
    return collector.finish();
}

} // namespace vpsim
