#include "analysis/predictability.hpp"

#include "isa/instruction.hpp"
#include "predictor/stride.hpp"

namespace vpsim
{

PredictabilityAnalysis
analyzePredictability(const std::vector<TraceRecord> &records,
                      ValuePredictor *predictor)
{
    std::unique_ptr<ValuePredictor> fallback;
    if (!predictor) {
        fallback = std::make_unique<StridePredictor>();
        predictor = fallback.get();
    }

    // Whether each producer instance's value was correctly predicted.
    std::vector<bool> instancePredicted(records.size(), false);
    struct Writer
    {
        SeqNum seq = invalidSeqNum;
    };
    std::vector<Writer> lastWriter(numArchRegs);

    std::uint64_t arcs = 0;
    std::uint64_t unpredictable = 0;
    std::uint64_t predictableDid[4] = {0, 0, 0, 0}; // 1,2,3,>=4

    for (const TraceRecord &record : records) {
        const auto consume = [&](RegIndex reg) {
            if (reg == invalidReg || reg == 0)
                return;
            const SeqNum producer = lastWriter[reg].seq;
            if (producer == invalidSeqNum)
                return;
            ++arcs;
            if (!instancePredicted[producer]) {
                ++unpredictable;
                return;
            }
            const std::uint64_t did = record.seq - producer;
            if (did >= 4)
                ++predictableDid[3];
            else
                ++predictableDid[did - 1];
        };
        consume(record.rs1);
        consume(record.rs2);

        if (record.producesValue()) {
            const RawPrediction raw = predictor->lookup(record.pc);
            instancePredicted[record.seq] =
                raw.hasPrediction && raw.value == record.result;
            predictor->train(record.pc, record.result);
            lastWriter[record.rd].seq = record.seq;
        }
    }

    PredictabilityAnalysis analysis;
    analysis.totalArcs = arcs;
    if (arcs == 0)
        return analysis;
    const auto frac = [arcs](std::uint64_t count) {
        return static_cast<double>(count) / static_cast<double>(arcs);
    };
    analysis.fracUnpredictable = frac(unpredictable);
    analysis.fracPredictableDid1 = frac(predictableDid[0]);
    analysis.fracPredictableDid2 = frac(predictableDid[1]);
    analysis.fracPredictableDid3 = frac(predictableDid[2]);
    analysis.fracPredictableDid4Plus = frac(predictableDid[3]);
    return analysis;
}

} // namespace vpsim
