/**
 * @file
 * Dynamic Instruction Distance (DID) analysis (paper §3.3).
 *
 * The dataflow graph is built over the entire execution trace, ignoring
 * basic-block boundaries: each dynamic instruction is a node numbered by
 * its appearance order, and each register true-data dependency is an arc
 * whose DID is |consumerSeq - producerSeq| (Equation 3.1). Loop-carried
 * and inter-block dependencies are therefore included, exactly as in the
 * paper's construction (Figure 3.2).
 */

#ifndef VPSIM_ANALYSIS_DID_HPP
#define VPSIM_ANALYSIS_DID_HPP

#include <cstdint>
#include <vector>

#include "common/histogram.hpp"
#include "trace/record.hpp"
#include "trace/source.hpp"

namespace vpsim
{

/** Bucket bounds used for the Figure 3.4 DID distribution histogram. */
std::vector<std::uint64_t> didHistogramBounds();

/** Result of a DID sweep over one trace. */
struct DidAnalysis
{
    /** DID histogram (Figure 3.4); buckets from didHistogramBounds(). */
    Histogram distribution{didHistogramBounds()};
    /** Arithmetic mean DID over all arcs (Figure 3.3). */
    double averageDid = 0.0;
    /**
     * Mean over arcs with DID <= 256. The plain mean is dominated by a
     * few program-lifetime accumulator arcs (DIDs in the millions);
     * the trimmed mean describes the dependencies a machine window
     * could ever see.
     */
    double averageDidTrimmed = 0.0;
    /** Total number of true-data dependence arcs. */
    std::uint64_t totalArcs = 0;
    /** Fraction of arcs with DID >= 4 (quoted as ~60% on average). */
    double fracDidAtLeast4 = 0.0;
};

/**
 * Walk @p records, build the trace-wide DFG arcs via last-writer
 * tracking, and accumulate the DID statistics. A
 * std::vector<TraceRecord> converts implicitly.
 */
DidAnalysis analyzeDid(TraceSpan records);

/** DID sweep over @p source (rewound first), block at a time. */
DidAnalysis analyzeDid(TraceSource &source);

/**
 * Streaming DID collector, for callers that do not hold the whole trace.
 */
class DidCollector
{
  public:
    DidCollector();

    /** Feed the next record in program order. */
    void observe(const TraceRecord &record);

    /** Feed a whole block of records in program order. */
    void observe(TraceSpan records);

    /** Finalize and return the analysis. */
    DidAnalysis finish() const;

  private:
    Histogram hist;
    /** Last writer sequence number per architectural register. */
    std::vector<SeqNum> lastWriter;
    /**
     * Arcs counted independently of the histogram, so finish() can
     * audit that no dependence arc was dropped by the bucketing.
     */
    std::uint64_t arcsObserved = 0;
    std::uint64_t arcsAtLeast4 = 0;
    std::uint64_t trimmedArcs = 0;
    long double trimmedSum = 0;
};

} // namespace vpsim

#endif // VPSIM_ANALYSIS_DID_HPP
