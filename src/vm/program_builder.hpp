/**
 * @file
 * Programmatic assembler for the mini ISA.
 *
 * Workload authors emit instructions through named methods (add, beq, ...)
 * and use Label handles for control-flow targets; build() resolves all
 * label references and returns an immutable Program.
 *
 * Register conventions used by the bundled workloads (not enforced):
 * r0 = zero, r1 = return address, r2 = stack pointer, r3.. = general.
 */

#ifndef VPSIM_VM_PROGRAM_BUILDER_HPP
#define VPSIM_VM_PROGRAM_BUILDER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "vm/program.hpp"

namespace vpsim
{

/** Opaque handle to a branch/jump target within one ProgramBuilder. */
class Label
{
  public:
    Label() = default;

  private:
    friend class ProgramBuilder;
    explicit Label(std::size_t label_id) : id(label_id), valid(true) {}

    std::size_t id = 0;
    bool valid = false;
};

/** Incremental builder producing a Program. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string program_name,
                            Addr load_address = 0x1000);

    /** Create a fresh, unbound label. */
    Label newLabel();

    /** Bind @p label to the next emitted instruction. */
    void bind(Label label);

    /**
     * Byte address of a bound label. Usable immediately after bind(); used
     * by workloads to place function addresses into jump tables in memory.
     */
    Addr boundAddr(Label label) const;

    /** @name Register-register ALU. */
    /// @{
    void add(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void sub(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void and_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void or_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void xor_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void slt(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void sltu(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void sll(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void srl(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void sra(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void mul(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void div(RegIndex rd, RegIndex rs1, RegIndex rs2);
    void rem(RegIndex rd, RegIndex rs1, RegIndex rs2);
    /// @}

    /** @name Register-immediate ALU. */
    /// @{
    void addi(RegIndex rd, RegIndex rs1, std::int64_t imm);
    void andi(RegIndex rd, RegIndex rs1, std::int64_t imm);
    void ori(RegIndex rd, RegIndex rs1, std::int64_t imm);
    void xori(RegIndex rd, RegIndex rs1, std::int64_t imm);
    void slti(RegIndex rd, RegIndex rs1, std::int64_t imm);
    void slli(RegIndex rd, RegIndex rs1, std::int64_t imm);
    void srli(RegIndex rd, RegIndex rs1, std::int64_t imm);
    void srai(RegIndex rd, RegIndex rs1, std::int64_t imm);
    void lui(RegIndex rd, std::int64_t imm);
    /// @}

    /** @name Memory. */
    /// @{
    void ld(RegIndex rd, RegIndex rs1_base, std::int64_t imm);
    void st(RegIndex rs2_src, RegIndex rs1_base, std::int64_t imm);
    void lbu(RegIndex rd, RegIndex rs1_base, std::int64_t imm);
    void sb(RegIndex rs2_src, RegIndex rs1_base, std::int64_t imm);
    /// @}

    /** @name Control flow. */
    /// @{
    void beq(RegIndex rs1, RegIndex rs2, Label target);
    void bne(RegIndex rs1, RegIndex rs2, Label target);
    void blt(RegIndex rs1, RegIndex rs2, Label target);
    void bge(RegIndex rs1, RegIndex rs2, Label target);
    void bltu(RegIndex rs1, RegIndex rs2, Label target);
    void bgeu(RegIndex rs1, RegIndex rs2, Label target);
    void jal(RegIndex rd, Label target);
    void jalr(RegIndex rd, RegIndex rs1, std::int64_t imm);
    /// @}

    /** @name Pseudo-instructions. */
    /// @{
    /** li: rd = imm (expands to addi rd, r0, imm). */
    void li(RegIndex rd, std::int64_t imm);
    /** mv: rd = rs (addi rd, rs, 0). */
    void mv(RegIndex rd, RegIndex rs);
    /** la: rd = byte address of @p target (target must be bound). */
    void la(RegIndex rd, Label target);
    /** j: unconditional jump (jal r0, target). */
    void j(Label target);
    /** call: jal r1, target. */
    void call(Label target);
    /** ret: jalr r0, r1, 0. */
    void ret();
    /** jr: jalr r0, rs, 0. */
    void jr(RegIndex rs);
    void nop();
    void halt();
    /// @}

    /** Number of instructions emitted so far. */
    std::size_t size() const { return insts.size(); }

    /** Resolve all label references and produce the Program. */
    Program build();

  private:
    void emitRR(OpCode op, RegIndex rd, RegIndex rs1, RegIndex rs2);
    void emitRI(OpCode op, RegIndex rd, RegIndex rs1, std::int64_t imm);
    void emitBranch(OpCode op, RegIndex rs1, RegIndex rs2, Label target);
    void checkReg(RegIndex index) const;
    std::size_t labelTarget(Label label) const;

    std::string progName;
    Addr base;
    std::vector<Instruction> insts;
    /** Bound position of each label (invalid sentinel when unbound). */
    std::vector<std::size_t> labelPositions;
    /** (instruction index, label id) pairs awaiting resolution. */
    std::vector<std::pair<std::size_t, std::size_t>> fixups;
    bool built = false;
};

} // namespace vpsim

#endif // VPSIM_VM_PROGRAM_BUILDER_HPP
