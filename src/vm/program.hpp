/**
 * @file
 * A compiled mini-ISA program: the instruction image plus its load address.
 */

#ifndef VPSIM_VM_PROGRAM_HPP
#define VPSIM_VM_PROGRAM_HPP

#include <string>
#include <vector>

#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace vpsim
{

/** An executable program image for the interpreter. */
class Program
{
  public:
    Program() = default;

    /**
     * @param program_name Human-readable name (e.g. "compress").
     * @param instructions The instruction image.
     * @param load_address Byte address of instruction 0.
     */
    Program(std::string program_name,
            std::vector<Instruction> instructions,
            Addr load_address = 0x1000);

    /** Number of static instructions. */
    std::size_t size() const { return insts.size(); }

    /** Instruction at static index @p index. */
    const Instruction &at(std::size_t index) const;

    /** Byte address of static instruction @p index. */
    Addr pcOf(std::size_t index) const { return base + index * instBytes; }

    /** Static index of byte address @p pc; panics on unaligned/foreign pc. */
    std::size_t indexOf(Addr pc) const;

    /** True when @p pc falls inside this program's code image. */
    bool contains(Addr pc) const;

    /** Load address of instruction 0. */
    Addr baseAddr() const { return base; }

    /** Program name. */
    const std::string &name() const { return progName; }

    /** Full disassembly listing for debugging. */
    std::string listing() const;

  private:
    std::string progName;
    std::vector<Instruction> insts;
    Addr base = 0x1000;
};

} // namespace vpsim

#endif // VPSIM_VM_PROGRAM_HPP
