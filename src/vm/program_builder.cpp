#include "vm/program_builder.hpp"

#include <limits>

#include "common/logging.hpp"

namespace vpsim
{

namespace
{

constexpr std::size_t unboundLabel = std::numeric_limits<std::size_t>::max();

} // namespace

ProgramBuilder::ProgramBuilder(std::string program_name, Addr load_address)
    : progName(std::move(program_name)),
      base(load_address)
{
}

Label
ProgramBuilder::newLabel()
{
    labelPositions.push_back(unboundLabel);
    return Label(labelPositions.size() - 1);
}

void
ProgramBuilder::bind(Label label)
{
    panicIf(!label.valid, "bind() on a default-constructed label");
    panicIf(labelPositions[label.id] != unboundLabel,
            "label bound twice in program '" + progName + "'");
    labelPositions[label.id] = insts.size();
}

Addr
ProgramBuilder::boundAddr(Label label) const
{
    panicIf(!label.valid, "boundAddr() on a default-constructed label");
    const std::size_t pos = labelPositions[label.id];
    panicIf(pos == unboundLabel,
            "boundAddr() on an unbound label in '" + progName + "'");
    return base + pos * instBytes;
}

void
ProgramBuilder::checkReg(RegIndex index) const
{
    panicIf(index >= numArchRegs,
            "register index out of range in program '" + progName + "'");
}

void
ProgramBuilder::emitRR(OpCode op, RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    checkReg(rd);
    checkReg(rs1);
    checkReg(rs2);
    Instruction inst;
    inst.op = op;
    inst.rd = rd;
    inst.rs1 = rs1;
    inst.rs2 = rs2;
    insts.push_back(inst);
}

void
ProgramBuilder::emitRI(OpCode op, RegIndex rd, RegIndex rs1,
                       std::int64_t imm)
{
    checkReg(rd);
    if (readsSrc1(op))
        checkReg(rs1);
    Instruction inst;
    inst.op = op;
    inst.rd = rd;
    inst.rs1 = readsSrc1(op) ? rs1 : invalidReg;
    inst.imm = imm;
    insts.push_back(inst);
}

void
ProgramBuilder::emitBranch(OpCode op, RegIndex rs1, RegIndex rs2,
                           Label target)
{
    checkReg(rs1);
    checkReg(rs2);
    panicIf(!target.valid, "branch to a default-constructed label");
    Instruction inst;
    inst.op = op;
    inst.rs1 = rs1;
    inst.rs2 = rs2;
    fixups.emplace_back(insts.size(), target.id);
    insts.push_back(inst);
}

void ProgramBuilder::add(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emitRR(OpCode::Add, rd, rs1, rs2); }
void ProgramBuilder::sub(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emitRR(OpCode::Sub, rd, rs1, rs2); }
void ProgramBuilder::and_(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emitRR(OpCode::And, rd, rs1, rs2); }
void ProgramBuilder::or_(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emitRR(OpCode::Or, rd, rs1, rs2); }
void ProgramBuilder::xor_(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emitRR(OpCode::Xor, rd, rs1, rs2); }
void ProgramBuilder::slt(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emitRR(OpCode::Slt, rd, rs1, rs2); }
void ProgramBuilder::sltu(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emitRR(OpCode::Sltu, rd, rs1, rs2); }
void ProgramBuilder::sll(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emitRR(OpCode::Sll, rd, rs1, rs2); }
void ProgramBuilder::srl(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emitRR(OpCode::Srl, rd, rs1, rs2); }
void ProgramBuilder::sra(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emitRR(OpCode::Sra, rd, rs1, rs2); }
void ProgramBuilder::mul(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emitRR(OpCode::Mul, rd, rs1, rs2); }
void ProgramBuilder::div(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emitRR(OpCode::Div, rd, rs1, rs2); }
void ProgramBuilder::rem(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ emitRR(OpCode::Rem, rd, rs1, rs2); }

void ProgramBuilder::addi(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ emitRI(OpCode::Addi, rd, rs1, imm); }
void ProgramBuilder::andi(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ emitRI(OpCode::Andi, rd, rs1, imm); }
void ProgramBuilder::ori(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ emitRI(OpCode::Ori, rd, rs1, imm); }
void ProgramBuilder::xori(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ emitRI(OpCode::Xori, rd, rs1, imm); }
void ProgramBuilder::slti(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ emitRI(OpCode::Slti, rd, rs1, imm); }
void ProgramBuilder::slli(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ emitRI(OpCode::Slli, rd, rs1, imm); }
void ProgramBuilder::srli(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ emitRI(OpCode::Srli, rd, rs1, imm); }
void ProgramBuilder::srai(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ emitRI(OpCode::Srai, rd, rs1, imm); }
void ProgramBuilder::lui(RegIndex rd, std::int64_t imm)
{ emitRI(OpCode::Lui, rd, invalidReg, imm); }

void
ProgramBuilder::ld(RegIndex rd, RegIndex rs1_base, std::int64_t imm)
{
    checkReg(rd);
    checkReg(rs1_base);
    Instruction inst;
    inst.op = OpCode::Ld;
    inst.rd = rd;
    inst.rs1 = rs1_base;
    inst.imm = imm;
    insts.push_back(inst);
}

void
ProgramBuilder::st(RegIndex rs2_src, RegIndex rs1_base, std::int64_t imm)
{
    checkReg(rs2_src);
    checkReg(rs1_base);
    Instruction inst;
    inst.op = OpCode::St;
    inst.rs1 = rs1_base;
    inst.rs2 = rs2_src;
    inst.imm = imm;
    insts.push_back(inst);
}

void
ProgramBuilder::lbu(RegIndex rd, RegIndex rs1_base, std::int64_t imm)
{
    checkReg(rd);
    checkReg(rs1_base);
    Instruction inst;
    inst.op = OpCode::Lbu;
    inst.rd = rd;
    inst.rs1 = rs1_base;
    inst.imm = imm;
    insts.push_back(inst);
}

void
ProgramBuilder::sb(RegIndex rs2_src, RegIndex rs1_base, std::int64_t imm)
{
    checkReg(rs2_src);
    checkReg(rs1_base);
    Instruction inst;
    inst.op = OpCode::Sb;
    inst.rs1 = rs1_base;
    inst.rs2 = rs2_src;
    inst.imm = imm;
    insts.push_back(inst);
}

void ProgramBuilder::beq(RegIndex rs1, RegIndex rs2, Label target)
{ emitBranch(OpCode::Beq, rs1, rs2, target); }
void ProgramBuilder::bne(RegIndex rs1, RegIndex rs2, Label target)
{ emitBranch(OpCode::Bne, rs1, rs2, target); }
void ProgramBuilder::blt(RegIndex rs1, RegIndex rs2, Label target)
{ emitBranch(OpCode::Blt, rs1, rs2, target); }
void ProgramBuilder::bge(RegIndex rs1, RegIndex rs2, Label target)
{ emitBranch(OpCode::Bge, rs1, rs2, target); }
void ProgramBuilder::bltu(RegIndex rs1, RegIndex rs2, Label target)
{ emitBranch(OpCode::Bltu, rs1, rs2, target); }
void ProgramBuilder::bgeu(RegIndex rs1, RegIndex rs2, Label target)
{ emitBranch(OpCode::Bgeu, rs1, rs2, target); }

void
ProgramBuilder::jal(RegIndex rd, Label target)
{
    checkReg(rd);
    panicIf(!target.valid, "jal to a default-constructed label");
    Instruction inst;
    inst.op = OpCode::Jal;
    inst.rd = rd;
    fixups.emplace_back(insts.size(), target.id);
    insts.push_back(inst);
}

void
ProgramBuilder::jalr(RegIndex rd, RegIndex rs1, std::int64_t imm)
{
    checkReg(rd);
    checkReg(rs1);
    Instruction inst;
    inst.op = OpCode::Jalr;
    inst.rd = rd;
    inst.rs1 = rs1;
    inst.imm = imm;
    insts.push_back(inst);
}

void ProgramBuilder::li(RegIndex rd, std::int64_t imm)
{ addi(rd, 0, imm); }
void ProgramBuilder::mv(RegIndex rd, RegIndex rs)
{ addi(rd, rs, 0); }

void
ProgramBuilder::la(RegIndex rd, Label target)
{
    li(rd, static_cast<std::int64_t>(boundAddr(target)));
}

void ProgramBuilder::j(Label target) { jal(0, target); }
void ProgramBuilder::call(Label target) { jal(1, target); }
void ProgramBuilder::ret() { jalr(0, 1, 0); }
void ProgramBuilder::jr(RegIndex rs) { jalr(0, rs, 0); }

void
ProgramBuilder::nop()
{
    Instruction inst;
    inst.op = OpCode::Nop;
    insts.push_back(inst);
}

void
ProgramBuilder::halt()
{
    Instruction inst;
    inst.op = OpCode::Halt;
    insts.push_back(inst);
}

Program
ProgramBuilder::build()
{
    panicIf(built, "ProgramBuilder::build() called twice");
    built = true;
    for (const auto &[inst_index, label_id] : fixups) {
        const std::size_t pos = labelPositions[label_id];
        panicIf(pos == unboundLabel,
                "unbound label referenced in program '" + progName + "'");
        insts[inst_index].target = static_cast<std::uint32_t>(pos);
    }
    return Program(progName, std::move(insts), base);
}

} // namespace vpsim
