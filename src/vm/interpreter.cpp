#include "vm/interpreter.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace vpsim
{

Interpreter::Interpreter(const Program &target_program,
                         Memory initial_memory)
    : program(target_program),
      mem(std::move(initial_memory))
{
    fatalIf(program.size() == 0, "cannot interpret an empty program");
}

Value
Interpreter::reg(RegIndex index) const
{
    panicIf(index >= numArchRegs, "register index out of range");
    return index == 0 ? 0 : regs[index];
}

Interpreter::RunResult
Interpreter::run(std::uint64_t max_insts, std::vector<TraceRecord> *out)
{
    RunResult result;
    if (halted) {
        result.halted = true;
        return result;
    }

    const auto read_reg = [this](RegIndex index) -> Value {
        return index == 0 ? 0 : regs[index];
    };
    const auto write_reg = [this](RegIndex index, Value value) {
        if (index != 0)
            regs[index] = value;
    };

    while (max_insts == 0 || result.executed < max_insts) {
        panicIf(pcIndex >= program.size(),
                "pc ran off the end of program '" + program.name() + "'");
        const Instruction &inst = program.at(pcIndex);
        const Addr pc = program.pcOf(pcIndex);

        TraceRecord rec;
        rec.seq = nextSeq;
        rec.pc = pc;
        rec.op = inst.op;
        rec.rd = writesDest(inst.op) ? inst.rd : invalidReg;
        rec.rs1 = readsSrc1(inst.op) ? inst.rs1 : invalidReg;
        rec.rs2 = readsSrc2(inst.op) ? inst.rs2 : invalidReg;

        const Value a = readsSrc1(inst.op) ? read_reg(inst.rs1) : 0;
        const Value b = readsSrc2(inst.op) ? read_reg(inst.rs2) : 0;
        const auto sa = static_cast<std::int64_t>(a);
        const auto sb_val = static_cast<std::int64_t>(b);

        std::size_t next_index = pcIndex + 1;
        Value dest_value = 0;
        bool wrote_dest = false;

        switch (inst.op) {
          case OpCode::Add:
            dest_value = a + b; wrote_dest = true; break;
          case OpCode::Sub:
            dest_value = a - b; wrote_dest = true; break;
          case OpCode::And:
            dest_value = a & b; wrote_dest = true; break;
          case OpCode::Or:
            dest_value = a | b; wrote_dest = true; break;
          case OpCode::Xor:
            dest_value = a ^ b; wrote_dest = true; break;
          case OpCode::Slt:
            dest_value = sa < sb_val ? 1 : 0; wrote_dest = true; break;
          case OpCode::Sltu:
            dest_value = a < b ? 1 : 0; wrote_dest = true; break;
          case OpCode::Sll:
            dest_value = a << (b & 63); wrote_dest = true; break;
          case OpCode::Srl:
            dest_value = a >> (b & 63); wrote_dest = true; break;
          case OpCode::Sra:
            dest_value = static_cast<Value>(sa >> (b & 63));
            wrote_dest = true; break;
          case OpCode::Mul:
            dest_value = a * b; wrote_dest = true; break;
          case OpCode::Div:
            // Division by zero yields all-ones, RISC-V style.
            dest_value = b == 0 ? ~Value{0}
                                : static_cast<Value>(sa / sb_val);
            wrote_dest = true; break;
          case OpCode::Rem:
            dest_value = b == 0 ? a : static_cast<Value>(sa % sb_val);
            wrote_dest = true; break;
          case OpCode::Addi:
            dest_value = a + static_cast<Value>(inst.imm);
            wrote_dest = true; break;
          case OpCode::Andi:
            dest_value = a & static_cast<Value>(inst.imm);
            wrote_dest = true; break;
          case OpCode::Ori:
            dest_value = a | static_cast<Value>(inst.imm);
            wrote_dest = true; break;
          case OpCode::Xori:
            dest_value = a ^ static_cast<Value>(inst.imm);
            wrote_dest = true; break;
          case OpCode::Slti:
            dest_value = sa < inst.imm ? 1 : 0; wrote_dest = true; break;
          case OpCode::Slli:
            dest_value = a << (inst.imm & 63); wrote_dest = true; break;
          case OpCode::Srli:
            dest_value = a >> (inst.imm & 63); wrote_dest = true; break;
          case OpCode::Srai:
            dest_value = static_cast<Value>(sa >> (inst.imm & 63));
            wrote_dest = true; break;
          case OpCode::Lui:
            dest_value = static_cast<Value>(inst.imm) << 16;
            wrote_dest = true; break;
          case OpCode::Ld:
            rec.memAddr = a + static_cast<Value>(inst.imm);
            dest_value = mem.read64(rec.memAddr);
            wrote_dest = true; break;
          case OpCode::Lbu:
            rec.memAddr = a + static_cast<Value>(inst.imm);
            dest_value = mem.read8(rec.memAddr);
            wrote_dest = true; break;
          case OpCode::St:
            rec.memAddr = a + static_cast<Value>(inst.imm);
            mem.write64(rec.memAddr, b);
            break;
          case OpCode::Sb:
            rec.memAddr = a + static_cast<Value>(inst.imm);
            mem.write8(rec.memAddr, static_cast<std::uint8_t>(b));
            break;
          case OpCode::Beq:
            rec.taken = a == b; break;
          case OpCode::Bne:
            rec.taken = a != b; break;
          case OpCode::Blt:
            rec.taken = sa < sb_val; break;
          case OpCode::Bge:
            rec.taken = sa >= sb_val; break;
          case OpCode::Bltu:
            rec.taken = a < b; break;
          case OpCode::Bgeu:
            rec.taken = a >= b; break;
          case OpCode::Jal:
            dest_value = pc + instBytes;
            wrote_dest = true;
            rec.taken = true;
            next_index = inst.target;
            break;
          case OpCode::Jalr: {
            const Addr target = a + static_cast<Value>(inst.imm);
            dest_value = pc + instBytes;
            wrote_dest = true;
            rec.taken = true;
            panicIf(!program.contains(target),
                    "jalr target outside program '" + program.name() + "'");
            next_index = program.indexOf(target);
            break;
          }
          case OpCode::Nop:
            break;
          case OpCode::Halt:
            halted = true;
            break;
          case OpCode::NumOpCodes:
            panic("invalid opcode executed");
        }

        if (inst.isConditional() && rec.taken)
            next_index = inst.target;

        if (wrote_dest) {
            write_reg(inst.rd, dest_value);
            // r0 writes are architecturally discarded; do not report a
            // produced value for them.
            rec.result = inst.rd == 0 ? 0 : dest_value;
        }

        rec.nextPc = halted ? pc : program.pcOf(next_index);
        ++nextSeq;
        ++result.executed;
        if (out)
            out->push_back(rec);

        if (halted) {
            result.halted = true;
            break;
        }
        pcIndex = next_index;
    }
    return result;
}

std::vector<TraceRecord>
captureTrace(const Program &target_program, Memory initial_memory,
             std::uint64_t max_insts)
{
    Interpreter interp(target_program, std::move(initial_memory));
    std::vector<TraceRecord> records;
    records.reserve(max_insts);
    interp.run(max_insts, &records);
    return records;
}

Status
captureTraceChunked(
    const Program &target_program, Memory initial_memory,
    std::uint64_t max_insts, std::uint64_t chunk_insts,
    const std::function<Status(const std::vector<TraceRecord> &)> &sink)
{
    panicIf(chunk_insts == 0, "chunk_insts must be positive");
    Interpreter interp(target_program, std::move(initial_memory));
    std::vector<TraceRecord> chunk;
    chunk.reserve(static_cast<std::size_t>(
        std::min(chunk_insts, max_insts)));
    std::uint64_t remaining = max_insts;
    while (remaining > 0) {
        chunk.clear();
        const std::uint64_t fuel = std::min(chunk_insts, remaining);
        const Interpreter::RunResult ran = interp.run(fuel, &chunk);
        remaining -= ran.executed;
        if (!chunk.empty()) {
            const Status sunk = sink(chunk);
            if (!sunk.isOk())
                return sunk;
        }
        if (ran.halted || ran.executed < fuel)
            break;
    }
    return Status::ok();
}

} // namespace vpsim
