#include "vm/program.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace vpsim
{

Program::Program(std::string program_name,
                 std::vector<Instruction> instructions,
                 Addr load_address)
    : progName(std::move(program_name)),
      insts(std::move(instructions)),
      base(load_address)
{
    for (const Instruction &inst : insts) {
        if (inst.op == OpCode::Jal || inst.isConditional()) {
            panicIf(inst.target >= insts.size(),
                    "program '" + progName + "' has a control target "
                    "outside the image");
        }
    }
}

const Instruction &
Program::at(std::size_t index) const
{
    panicIf(index >= insts.size(), "Program::at index out of range");
    return insts[index];
}

std::size_t
Program::indexOf(Addr pc) const
{
    panicIf(!contains(pc), "Program::indexOf: pc outside program");
    panicIf((pc - base) % instBytes != 0, "Program::indexOf: unaligned pc");
    return static_cast<std::size_t>((pc - base) / instBytes);
}

bool
Program::contains(Addr pc) const
{
    return pc >= base && pc < base + insts.size() * instBytes &&
           (pc - base) % instBytes == 0;
}

std::string
Program::listing() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < insts.size(); ++i) {
        oss << std::hex << pcOf(i) << std::dec << "  [" << i << "]  "
            << insts[i].disassemble() << "\n";
    }
    return oss.str();
}

} // namespace vpsim
