#include "vm/assembler.hpp"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/logging.hpp"
#include "vm/program_builder.hpp"

namespace vpsim
{

namespace
{

/** One parsed source line: optional label, mnemonic, operand strings. */
struct SourceLine
{
    int number = 0;
    std::vector<std::string> labels;
    std::string mnemonic;
    std::vector<std::string> operands;
};

[[noreturn]] void
asmError(int line, const std::string &message)
{
    fatal("assembler: line " + std::to_string(line) + ": " + message);
}

bool
isIdentChar(char ch)
{
    return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_' ||
           ch == '.';
}

std::string
lower(std::string text)
{
    for (char &ch : text)
        ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    return text;
}

/** Strip comments and surrounding whitespace. */
std::string
cleanLine(const std::string &raw)
{
    std::string text = raw;
    for (const char marker : {'#', ';'}) {
        const auto pos = text.find(marker);
        if (pos != std::string::npos)
            text.resize(pos);
    }
    const auto first = text.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    const auto last = text.find_last_not_of(" \t\r");
    return text.substr(first, last - first + 1);
}

/** Parse the (possibly multiple) "label:" prefixes off a line. */
std::string
takeLabels(std::string text, int line_no, std::vector<std::string> &out)
{
    while (true) {
        std::size_t i = 0;
        while (i < text.size() && isIdentChar(text[i]))
            ++i;
        if (i == 0 || i >= text.size() || text[i] != ':')
            return text;
        const std::string label = text.substr(0, i);
        if (std::isdigit(static_cast<unsigned char>(label[0])))
            asmError(line_no, "label '" + label +
                                  "' must not start with a digit");
        out.push_back(label);
        text = cleanLine(text.substr(i + 1));
        if (text.empty())
            return text;
    }
}

/** Split "a, b, 8(c)" into operand tokens. */
std::vector<std::string>
splitOperands(const std::string &text)
{
    std::vector<std::string> operands;
    std::string current;
    for (const char ch : text) {
        if (ch == ',') {
            operands.push_back(cleanLine(current));
            current.clear();
        } else {
            current.push_back(ch);
        }
    }
    const std::string tail = cleanLine(current);
    if (!tail.empty())
        operands.push_back(tail);
    return operands;
}

/** Register-name table (named aliases + r0..r31). */
RegIndex
parseRegister(const std::string &token, int line_no)
{
    static const std::map<std::string, RegIndex> names = {
        {"zero", 0}, {"ra", 1},  {"sp", 2},
        {"t0", 3},   {"t1", 4},  {"t2", 5},  {"t3", 6},  {"t4", 7},
        {"t5", 8},   {"t6", 9},  {"t7", 10}, {"t8", 11},
        {"s0", 12},  {"s1", 13}, {"s2", 14}, {"s3", 15}, {"s4", 16},
        {"s5", 17},  {"s6", 18}, {"s7", 19}, {"s8", 20}, {"s9", 21},
        {"a0", 22},  {"a1", 23}, {"a2", 24}, {"a3", 25},
        {"c0", 26},  {"c1", 27}, {"c2", 28}, {"c3", 29}, {"c4", 30},
        {"c5", 31},
    };
    const std::string name = lower(token);
    const auto it = names.find(name);
    if (it != names.end())
        return it->second;
    if (name.size() >= 2 && name[0] == 'r') {
        char *end = nullptr;
        const long index = std::strtol(name.c_str() + 1, &end, 10);
        if (*end == '\0' && index >= 0 &&
            index < static_cast<long>(numArchRegs)) {
            return static_cast<RegIndex>(index);
        }
    }
    asmError(line_no, "unknown register '" + token + "'");
}

std::int64_t
parseImmediate(const std::string &token, int line_no)
{
    if (token.empty())
        asmError(line_no, "missing immediate");
    char *end = nullptr;
    const long long value = std::strtoll(token.c_str(), &end, 0);
    if (end == token.c_str() || *end != '\0')
        asmError(line_no, "bad immediate '" + token + "'");
    return value;
}

/** Parse "imm(base)" memory operands. */
void
parseMemOperand(const std::string &token, int line_no,
                std::int64_t &imm, RegIndex &base)
{
    const auto open = token.find('(');
    const auto close = token.find(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open || close + 1 != token.size()) {
        asmError(line_no, "bad memory operand '" + token +
                              "' (expected imm(base))");
    }
    const std::string imm_text = cleanLine(token.substr(0, open));
    imm = imm_text.empty() ? 0 : parseImmediate(imm_text, line_no);
    base = parseRegister(
        cleanLine(token.substr(open + 1, close - open - 1)), line_no);
}

} // namespace

Program
assembleProgram(const std::string &source,
                const std::string &program_name, Addr load_address)
{
    // Pass 0: lex into lines.
    std::vector<SourceLine> lines;
    {
        std::istringstream stream(source);
        std::string raw;
        int number = 0;
        while (std::getline(stream, raw)) {
            ++number;
            std::string text = cleanLine(raw);
            if (text.empty())
                continue;
            SourceLine line;
            line.number = number;
            text = takeLabels(text, number, line.labels);
            if (!text.empty()) {
                const auto space = text.find_first_of(" \t");
                line.mnemonic = lower(text.substr(0, space));
                if (space != std::string::npos) {
                    line.operands =
                        splitOperands(cleanLine(text.substr(space)));
                }
            }
            if (!line.labels.empty() || !line.mnemonic.empty())
                lines.push_back(line);
        }
    }

    ProgramBuilder builder(program_name, load_address);

    // Pass 1: declare every label (forward references need handles).
    std::map<std::string, Label> labels;
    for (const SourceLine &line : lines) {
        for (const std::string &name : line.labels) {
            if (labels.count(name))
                asmError(line.number, "label '" + name + "' redefined");
            labels.emplace(name, builder.newLabel());
        }
    }

    const auto labelOf = [&](const std::string &name,
                             int line_no) -> Label {
        const auto it = labels.find(name);
        if (it == labels.end())
            asmError(line_no, "undefined label '" + name + "'");
        return it->second;
    };

    // Pass 2: emit.
    for (const SourceLine &line : lines) {
        for (const std::string &name : line.labels)
            builder.bind(labels.at(name));
        if (line.mnemonic.empty())
            continue;
        const int n = line.number;
        const auto &ops = line.operands;
        const auto want = [&](std::size_t count) {
            if (ops.size() != count) {
                asmError(n, "'" + line.mnemonic + "' expects " +
                                std::to_string(count) + " operands, got " +
                                std::to_string(ops.size()));
            }
        };
        const auto reg = [&](std::size_t i) {
            return parseRegister(ops[i], n);
        };
        const auto imm = [&](std::size_t i) {
            return parseImmediate(ops[i], n);
        };

        using Emit3R = void (ProgramBuilder::*)(RegIndex, RegIndex,
                                                RegIndex);
        static const std::map<std::string, Emit3R> three_reg = {
            {"add", &ProgramBuilder::add},   {"sub", &ProgramBuilder::sub},
            {"and", &ProgramBuilder::and_},  {"or", &ProgramBuilder::or_},
            {"xor", &ProgramBuilder::xor_},  {"slt", &ProgramBuilder::slt},
            {"sltu", &ProgramBuilder::sltu}, {"sll", &ProgramBuilder::sll},
            {"srl", &ProgramBuilder::srl},   {"sra", &ProgramBuilder::sra},
            {"mul", &ProgramBuilder::mul},   {"div", &ProgramBuilder::div},
            {"rem", &ProgramBuilder::rem},
        };
        using EmitRI = void (ProgramBuilder::*)(RegIndex, RegIndex,
                                                std::int64_t);
        static const std::map<std::string, EmitRI> reg_imm = {
            {"addi", &ProgramBuilder::addi},
            {"andi", &ProgramBuilder::andi},
            {"ori", &ProgramBuilder::ori},
            {"xori", &ProgramBuilder::xori},
            {"slti", &ProgramBuilder::slti},
            {"slli", &ProgramBuilder::slli},
            {"srli", &ProgramBuilder::srli},
            {"srai", &ProgramBuilder::srai},
        };
        using EmitBr = void (ProgramBuilder::*)(RegIndex, RegIndex,
                                                Label);
        static const std::map<std::string, EmitBr> branches = {
            {"beq", &ProgramBuilder::beq},   {"bne", &ProgramBuilder::bne},
            {"blt", &ProgramBuilder::blt},   {"bge", &ProgramBuilder::bge},
            {"bltu", &ProgramBuilder::bltu}, {"bgeu", &ProgramBuilder::bgeu},
        };

        if (const auto it = three_reg.find(line.mnemonic);
            it != three_reg.end()) {
            want(3);
            (builder.*(it->second))(reg(0), reg(1), reg(2));
        } else if (const auto ri = reg_imm.find(line.mnemonic);
                   ri != reg_imm.end()) {
            want(3);
            (builder.*(ri->second))(reg(0), reg(1), imm(2));
        } else if (const auto br = branches.find(line.mnemonic);
                   br != branches.end()) {
            want(3);
            (builder.*(br->second))(reg(0), reg(1), labelOf(ops[2], n));
        } else if (line.mnemonic == "lui") {
            want(2);
            builder.lui(reg(0), imm(1));
        } else if (line.mnemonic == "li") {
            want(2);
            builder.li(reg(0), imm(1));
        } else if (line.mnemonic == "mv") {
            want(2);
            builder.mv(reg(0), reg(1));
        } else if (line.mnemonic == "la") {
            want(2);
            builder.la(reg(0), labelOf(ops[1], n));
        } else if (line.mnemonic == "ld" || line.mnemonic == "lbu") {
            want(2);
            std::int64_t offset = 0;
            RegIndex base = 0;
            parseMemOperand(ops[1], n, offset, base);
            if (line.mnemonic == "ld")
                builder.ld(reg(0), base, offset);
            else
                builder.lbu(reg(0), base, offset);
        } else if (line.mnemonic == "st" || line.mnemonic == "sb") {
            want(2);
            std::int64_t offset = 0;
            RegIndex base = 0;
            parseMemOperand(ops[1], n, offset, base);
            if (line.mnemonic == "st")
                builder.st(reg(0), base, offset);
            else
                builder.sb(reg(0), base, offset);
        } else if (line.mnemonic == "jal") {
            want(2);
            builder.jal(reg(0), labelOf(ops[1], n));
        } else if (line.mnemonic == "jalr") {
            want(3);
            builder.jalr(reg(0), reg(1), imm(2));
        } else if (line.mnemonic == "j") {
            want(1);
            builder.j(labelOf(ops[0], n));
        } else if (line.mnemonic == "call") {
            want(1);
            builder.call(labelOf(ops[0], n));
        } else if (line.mnemonic == "ret") {
            want(0);
            builder.ret();
        } else if (line.mnemonic == "jr") {
            want(1);
            builder.jr(reg(0));
        } else if (line.mnemonic == "nop") {
            want(0);
            builder.nop();
        } else if (line.mnemonic == "halt") {
            want(0);
            builder.halt();
        } else {
            asmError(n, "unknown mnemonic '" + line.mnemonic + "'");
        }
    }

    fatalIf(builder.size() == 0, "assembler: empty program");
    return builder.build();
}

Program
assembleFile(const std::string &path, Addr load_address)
{
    std::ifstream stream(path);
    fatalIf(!stream, "assembler: cannot open " + path);
    std::ostringstream buffer;
    buffer << stream.rdbuf();
    // Program name = file name without directories.
    const auto slash = path.find_last_of('/');
    const std::string name =
        slash == std::string::npos ? path : path.substr(slash + 1);
    return assembleProgram(buffer.str(), name, load_address);
}

} // namespace vpsim
