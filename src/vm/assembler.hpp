/**
 * @file
 * Text assembler for the mini ISA.
 *
 * The ProgramBuilder API is convenient from C++, but downstream users
 * writing their own workloads want an assembly file. The dialect is a
 * tiny RISC-V-flavoured syntax:
 *
 * @code
 *     # sum the numbers 1..10
 *             li   s0, 10          # counter
 *             li   s1, 0           # sum
 *     loop:
 *             add  s1, s1, s0
 *             addi s0, s0, -1
 *             bne  s0, zero, loop
 *             st   s1, 0(s2)
 *             halt
 * @endcode
 *
 * Comments start with '#' or ';'. Registers are named (zero, ra, sp,
 * t0-t8, s0-s9, a0-a3, c0-c5) or numeric (r0-r31). Immediates are
 * decimal or 0x hex, optionally negative. Memory operands use the
 * imm(base) form. Labels are identifiers followed by ':'. Pseudo-ops:
 * li, mv, la, j, call, ret, jr, nop, halt.
 */

#ifndef VPSIM_VM_ASSEMBLER_HPP
#define VPSIM_VM_ASSEMBLER_HPP

#include <string>

#include "vm/program.hpp"

namespace vpsim
{

/**
 * Assemble @p source into a Program.
 *
 * Calls fatal() with the line number on any syntax error, unknown
 * mnemonic/register, or undefined label.
 *
 * @param source Full assembly text.
 * @param program_name Name recorded in the Program.
 * @param load_address Byte address of the first instruction.
 */
Program assembleProgram(const std::string &source,
                        const std::string &program_name = "asm",
                        Addr load_address = 0x1000);

/** Assemble the contents of @p path (fatal() if unreadable). */
Program assembleFile(const std::string &path,
                     Addr load_address = 0x1000);

} // namespace vpsim

#endif // VPSIM_VM_ASSEMBLER_HPP
