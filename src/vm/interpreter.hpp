/**
 * @file
 * Functional interpreter of the mini ISA that emits dynamic trace records.
 *
 * The interpreter executes a Program against a Memory image and captures a
 * TraceRecord per retired instruction. This is our stand-in for the Shade
 * tracing tool used in the paper (§3.1): the traces carry genuine data
 * values and control flow, so value predictability is organic.
 */

#ifndef VPSIM_VM_INTERPRETER_HPP
#define VPSIM_VM_INTERPRETER_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.hpp"
#include "trace/record.hpp"
#include "vm/memory.hpp"
#include "vm/program.hpp"

namespace vpsim
{

/** Executes programs and captures their dynamic traces. */
class Interpreter
{
  public:
    /** Outcome of one run. */
    struct RunResult
    {
        /** Number of instructions retired. */
        std::uint64_t executed = 0;
        /** True when a halt instruction was retired (vs fuel exhausted). */
        bool halted = false;
    };

    /**
     * @param target_program The program to execute.
     * @param initial_memory Initial data memory image.
     */
    Interpreter(const Program &target_program, Memory initial_memory);

    /**
     * Execute until halt or until @p max_insts instructions retire.
     *
     * @param max_insts Fuel limit (0 means unlimited).
     * @param out When non-null, a record is appended per instruction.
     */
    RunResult run(std::uint64_t max_insts,
                  std::vector<TraceRecord> *out = nullptr);

    /** Architectural register value (r0 always reads 0). */
    Value reg(RegIndex index) const;

    /** The (mutated) data memory. */
    const Memory &memory() const { return mem; }

  private:
    const Program &program;
    Memory mem;
    std::array<Value, numArchRegs> regs{};
    std::uint64_t nextSeq = 0;
    std::size_t pcIndex = 0;
    bool halted = false;
};

/**
 * Convenience: run @p target_program on @p initial_memory and return the
 * trace (fatal()s if the program neither halts nor reaches @p max_insts).
 */
std::vector<TraceRecord> captureTrace(const Program &target_program,
                                      Memory initial_memory,
                                      std::uint64_t max_insts);

/**
 * Streaming capture: run the program and hand the trace to @p sink in
 * bounded chunks of at most @p chunk_insts records, so the full trace
 * never materializes in this process (the sink typically appends to a
 * TraceV3Writer). The chunk buffer is reused across calls; the sink
 * must copy or write out what it needs before returning. Stops early
 * (and returns the sink's error) on the first non-ok sink result.
 */
[[nodiscard]] Status captureTraceChunked(
    const Program &target_program, Memory initial_memory,
    std::uint64_t max_insts, std::uint64_t chunk_insts,
    const std::function<Status(const std::vector<TraceRecord> &)>
        &sink);

} // namespace vpsim

#endif // VPSIM_VM_INTERPRETER_HPP
