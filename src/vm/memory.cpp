#include "vm/memory.hpp"

namespace vpsim
{

const Memory::Page *
Memory::findPage(Addr addr) const
{
    const auto it = pages.find(addr >> pageShift);
    return it == pages.end() ? nullptr : it->second.get();
}

Memory::Page &
Memory::touchPage(Addr addr)
{
    auto &slot = pages[addr >> pageShift];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

std::uint8_t
Memory::read8(Addr addr) const
{
    const Page *page = findPage(addr);
    if (!page)
        return 0;
    return (*page)[addr & (pageBytes - 1)];
}

void
Memory::write8(Addr addr, std::uint8_t value)
{
    touchPage(addr)[addr & (pageBytes - 1)] = value;
}

Value
Memory::read64(Addr addr) const
{
    Value value = 0;
    for (unsigned i = 0; i < 8; ++i)
        value |= static_cast<Value>(read8(addr + i)) << (8 * i);
    return value;
}

void
Memory::write64(Addr addr, Value value)
{
    for (unsigned i = 0; i < 8; ++i)
        write8(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
}

void
Memory::writeBlock(Addr addr, const std::uint8_t *data, std::size_t size)
{
    for (std::size_t i = 0; i < size; ++i)
        write8(addr + i, data[i]);
}

void
Memory::writeWords(Addr addr, const std::vector<Value> &words)
{
    for (std::size_t i = 0; i < words.size(); ++i)
        write64(addr + i * 8, words[i]);
}

} // namespace vpsim
