/**
 * @file
 * Sparse paged byte-addressable memory for the interpreter.
 *
 * Pages are allocated lazily on first touch; unwritten memory reads as
 * zero. This keeps multi-megabyte workload heaps cheap while staying fully
 * deterministic.
 */

#ifndef VPSIM_VM_MEMORY_HPP
#define VPSIM_VM_MEMORY_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace vpsim
{

/** Sparse 64-bit address space. */
class Memory
{
  public:
    /** Read one byte; untouched memory reads as zero. */
    std::uint8_t read8(Addr addr) const;

    /** Write one byte. */
    void write8(Addr addr, std::uint8_t value);

    /** Read a little-endian 64-bit word (no alignment requirement). */
    Value read64(Addr addr) const;

    /** Write a little-endian 64-bit word. */
    void write64(Addr addr, Value value);

    /** Copy a byte range into memory. */
    void writeBlock(Addr addr, const std::uint8_t *data, std::size_t size);

    /** Convenience: write a sequence of 64-bit words starting at @p addr. */
    void writeWords(Addr addr, const std::vector<Value> &words);

    /** Number of resident pages (for tests). */
    std::size_t residentPages() const { return pages.size(); }

  private:
    static constexpr std::size_t pageShift = 12;
    static constexpr std::size_t pageBytes = std::size_t{1} << pageShift;

    using Page = std::array<std::uint8_t, pageBytes>;

    const Page *findPage(Addr addr) const;
    Page &touchPage(Addr addr);

    std::unordered_map<Addr, std::unique_ptr<Page>> pages;
};

} // namespace vpsim

#endif // VPSIM_VM_MEMORY_HPP
