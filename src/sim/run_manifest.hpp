/**
 * @file
 * Signed run manifests: provenance sidecars for emitted CSV data.
 *
 * Every bench that writes `--csv FILE` also writes `FILE.manifest.json`
 * describing exactly how the data was produced: the full experiment
 * fingerprint (every option, defaults applied), the source revision the
 * binary was built from, the binary trace-format version, the
 * self-check configuration (--check-invariants / --cross-check /
 * --job-timeout), and a CRC-32 of the CSV's bytes at write time. The
 * manifest body is itself signed with a CRC-32 over a canonical
 * key=value rendering, so any later edit to the manifest or the CSV is
 * detectable — tamper-*evidence* for honest mistakes (truncated copies,
 * stale files mixed into a figure), not cryptographic protection.
 *
 * `scripts/verify_manifest.py` re-derives both checksums and fails on
 * any mismatch; docs/VALIDATION.md documents the schema.
 */

#ifndef VPSIM_SIM_RUN_MANIFEST_HPP
#define VPSIM_SIM_RUN_MANIFEST_HPP

#include <string>

#include "common/options.hpp"

namespace vpsim
{

/**
 * Write `<csv_path>.manifest.json` describing @p csv_path as it exists
 * on disk right now. Called by maybeWriteCsv() after each append, so
 * the manifest always matches the CSV's latest state; a bench that
 * appends several figures leaves one manifest covering the final file.
 * Failure to write the manifest is fatal: a run whose provenance
 * cannot be recorded should not look like it succeeded.
 */
void writeRunManifest(const Options &options,
                      const std::string &csv_path);

/** The revision the binary was built from ("unknown" outside git). */
std::string buildGitDescribe();

} // namespace vpsim

#endif // VPSIM_SIM_RUN_MANIFEST_HPP
