/**
 * @file
 * Shared plumbing for the figure-regeneration benches: trace capture for
 * a benchmark set, standard command-line options, and the per-benchmark +
 * average table layout the paper's figures use.
 */

#ifndef VPSIM_SIM_EXPERIMENT_HPP
#define VPSIM_SIM_EXPERIMENT_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "common/table_printer.hpp"
#include "trace/record.hpp"

namespace vpsim
{

/** Captured traces for a set of benchmarks. */
struct BenchmarkTraces
{
    std::vector<std::string> names;
    std::vector<std::vector<TraceRecord>> traces;

    std::size_t size() const { return names.size(); }
};

/**
 * Declare the options every figure bench shares:
 * --insts (trace length per benchmark) and --benchmarks (subset filter).
 *
 * @param default_insts Default per-benchmark trace length; figure benches
 *        choose a length that keeps a full sweep under ~1 minute.
 */
void declareStandardOptions(Options &options,
                            std::uint64_t default_insts);

/**
 * Capture traces for the requested benchmarks (per the parsed options).
 */
BenchmarkTraces captureBenchmarks(const Options &options);

/**
 * Build a figure-shaped table: one row per benchmark, one column per
 * configuration, plus an "avg" row of per-column arithmetic means.
 *
 * @param title Table title, e.g. "Figure 3.1 - ...".
 * @param row_names Benchmark names.
 * @param column_names Configuration labels.
 * @param cells cells[row][column] as fractions/values.
 * @param render Cell formatter (percent or number).
 */
std::string renderFigureTable(
    const std::string &title, const std::vector<std::string> &row_names,
    const std::vector<std::string> &column_names,
    const std::vector<std::vector<double>> &cells,
    const std::function<std::string(double)> &render);

/** Shorthand: render cells as percentages ("33.4%"). */
std::string renderPercentTable(
    const std::string &title, const std::vector<std::string> &row_names,
    const std::vector<std::string> &column_names,
    const std::vector<std::vector<double>> &cells);

/**
 * If the standard --csv option was given, append the figure's data to
 * that file in tidy long form: figure,benchmark,configuration,value.
 * Values are written raw (fractions, not percentages). No-op when the
 * option is empty.
 */
void maybeWriteCsv(const Options &options, const std::string &figure_id,
                   const std::vector<std::string> &row_names,
                   const std::vector<std::string> &column_names,
                   const std::vector<std::vector<double>> &cells);

} // namespace vpsim

#endif // VPSIM_SIM_EXPERIMENT_HPP
