/**
 * @file
 * Shared plumbing for the figure-regeneration benches: captured-trace
 * handles, standard command-line options, and the per-benchmark +
 * average table layout the paper's figures use.
 *
 * The execution engine itself — the job grid, the thread pool, the
 * on-disk trace cache — lives in sim_runner.hpp; this header carries
 * the data types and formatting helpers shared by every bench.
 */

#ifndef VPSIM_SIM_EXPERIMENT_HPP
#define VPSIM_SIM_EXPERIMENT_HPP

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "common/table_printer.hpp"
#include "trace/record.hpp"

namespace vpsim
{

/** An immutable captured trace, shareable across concurrent jobs. */
using TraceHandle = std::shared_ptr<const std::vector<TraceRecord>>;

/**
 * Captured traces for a set of benchmarks.
 *
 * Traces are held by shared handle so a grid of simulation jobs can run
 * against them concurrently without copying; nothing may mutate a trace
 * after capture.
 */
struct BenchmarkTraces
{
    std::vector<std::string> names;
    std::vector<TraceHandle> traces;

    std::size_t size() const { return names.size(); }

    /** The records of benchmark @p index. */
    const std::vector<TraceRecord> &trace(std::size_t index) const
    {
        return *traces[index];
    }
};

/**
 * Declare the experiment-runtime options every SimRunner user shares:
 * --jobs (worker threads), --trace-cache-dir (on-disk capture cache),
 * --stats (dump the runtime's counters to stderr), and the
 * fault-tolerance flags --keep-going (isolate failing jobs as NaN
 * cells), --checkpoint / --resume (survive SIGINT/SIGTERM and continue
 * an interrupted sweep), and --fault-inject (arm the deterministic I/O
 * fault injector for soak tests).
 *
 * declareStandardOptions() calls this; benches with no benchmark
 * capture of their own (worked examples) can call it directly.
 */
void declareRunnerOptions(Options &options);

/**
 * Declare the options every figure bench shares: --insts (trace length
 * per benchmark), --benchmarks (subset filter), --csv, --scale, --seed,
 * --skip, plus the runner options above.
 *
 * @param default_insts Default per-benchmark trace length; figure benches
 *        choose a length that keeps a full sweep under ~1 minute.
 */
void declareStandardOptions(Options &options,
                            std::uint64_t default_insts);

/**
 * Declare --predictor for benches whose machine configuration exposes
 * the predictor kind; parse with predictorKindFromString().
 */
void declarePredictorOption(Options &options,
                            const std::string &default_kind = "stride");

/**
 * Validate @p names against the workload registry; fatal() with the
 * full list of valid names on any unknown entry.
 */
void validateBenchmarkNames(const std::vector<std::string> &names);

/**
 * Capture traces for the requested benchmarks (per the parsed options).
 *
 * Convenience wrapper that builds a SimRunner internally; benches that
 * also run a job grid should construct the SimRunner themselves and use
 * SimRunner::captureBenchmarks() so capture and simulation share one
 * pool and one cache.
 */
BenchmarkTraces captureBenchmarks(const Options &options);

/**
 * Build a figure-shaped table: one row per benchmark, one column per
 * configuration, plus an "avg" row of per-column arithmetic means.
 *
 * @param title Table title, e.g. "Figure 3.1 - ...".
 * @param row_names Benchmark names.
 * @param column_names Configuration labels.
 * @param cells cells[row][column] as fractions/values.
 * @param render Cell formatter (percent or number).
 */
std::string renderFigureTable(
    const std::string &title, const std::vector<std::string> &row_names,
    const std::vector<std::string> &column_names,
    const std::vector<std::vector<double>> &cells,
    const std::function<std::string(double)> &render);

/** Shorthand: render cells as percentages ("33.4%"). */
std::string renderPercentTable(
    const std::string &title, const std::vector<std::string> &row_names,
    const std::vector<std::string> &column_names,
    const std::vector<std::vector<double>> &cells);

/**
 * If the standard --csv option was given, append the figure's data to
 * that file in tidy long form: figure,benchmark,configuration,value.
 * Values are written raw (fractions, not percentages). No-op when the
 * option is empty.
 */
void maybeWriteCsv(const Options &options, const std::string &figure_id,
                   const std::vector<std::string> &row_names,
                   const std::vector<std::string> &column_names,
                   const std::vector<std::vector<double>> &cells);

} // namespace vpsim

#endif // VPSIM_SIM_EXPERIMENT_HPP
