#include "sim/experiment.hpp"

#include <algorithm>
#include <cstdio>

#include "common/logging.hpp"
#include "core/speedup.hpp"
#include "sim/run_manifest.hpp"
#include "sim/sim_runner.hpp"
#include "trace/trace_stats.hpp"
#include "workloads/workload.hpp"

namespace vpsim
{

void
declareRunnerOptions(Options &options)
{
    options.declare("jobs", "0",
                    "worker threads for the simulation grid "
                    "(0 = hardware concurrency; 1 = serial)");
    options.declare("trace-cache-dir", "",
                    "cache captured workload traces in this directory "
                    "(reused across bench binaries and runs)");
    options.declare("stats", "0",
                    "dump the experiment runtime's stats registry to "
                    "stderr");
    options.declare("keep-going", "0",
                    "record failing jobs (cells become NaN) and finish "
                    "the sweep instead of aborting on the first error");
    options.declare("checkpoint", "",
                    "flush finished grid cells to this file when the "
                    "sweep is interrupted (SIGINT/SIGTERM)");
    options.declare("resume", "0",
                    "reload finished cells from the --checkpoint file "
                    "so an interrupted sweep continues");
    options.declare("fault-inject", "",
                    "deterministic I/O fault spec, e.g. "
                    "write:3:torn,read:2:eio,job:5:sigint "
                    "(testing only; results stay byte-identical)");
    options.declare("check-invariants", "cheap",
                    "self-check level: off, cheap (always-on O(1) "
                    "audits) or full (deep per-cycle model audits)");
    options.declare("cross-check", "0",
                    "re-simulate N deterministically sampled grid cells "
                    "on the naive golden-reference model and fail on "
                    "divergence (0 = off)");
    options.declare("job-timeout", "0",
                    "seconds without job progress before the watchdog "
                    "cancels it (cell becomes a timeout NaN; 0 = off)");
    options.declare("trace-format", "3",
                    "on-disk trace format for captures and the trace "
                    "cache: 3 (block-framed, streamable) or 2 (legacy "
                    "flat records)");
    options.declare("salvage-blocks", "0",
                    "quarantine and skip corrupt v3 trace blocks "
                    "(loss reported in stats and the run manifest) "
                    "instead of failing the whole file");
    options.declare("mem-budget", "0",
                    "soft process-RSS budget in MB: trace streaming "
                    "degrades mmap -> buffered -> single-block window "
                    "to stay under it (0 = unlimited)");
    options.declare("cache-gc-days", "7",
                    "age in days after which quarantined .corrupt-* "
                    "trace cache files are garbage-collected "
                    "(0 = keep forever)");

    // Bad option *combinations* should fail at parse time with a usage
    // hint, not forty minutes into a sweep.
    options.addValidator([](const Options &parsed) -> std::string {
        if (parsed.getBool("resume") &&
            parsed.getString("checkpoint").empty())
            return "--resume 1 requires --checkpoint FILE (there is no "
                   "file to reload cells from)";
        return "";
    });
    options.addValidator([](const Options &parsed) -> std::string {
        if (parsed.provided("job-timeout") &&
            parsed.getDouble("job-timeout") <= 0.0)
            return "--job-timeout SEC must be positive (omit the "
                   "option to disable the watchdog)";
        return "";
    });
    options.addValidator([](const Options &parsed) -> std::string {
        if (parsed.getInt("cross-check") < 0)
            return "--cross-check N must be >= 0 (N cells re-simulated "
                   "on the reference model)";
        if (parsed.getInt("cross-check") > 0 &&
            !parsed.getString("fault-inject").empty())
            return "--cross-check cannot run under --fault-inject: "
                   "injected faults would report as model divergence";
        return "";
    });
    options.addValidator([](const Options &parsed) -> std::string {
        const std::string level = parsed.getString("check-invariants");
        if (level != "off" && level != "cheap" && level != "full")
            return "--check-invariants expects off, cheap or full, "
                   "got '" + level + "'";
        return "";
    });
    options.addValidator([](const Options &parsed) -> std::string {
        const std::int64_t format = parsed.getInt("trace-format");
        if (format != 2 && format != 3)
            return "--trace-format expects 2 (legacy flat) or 3 "
                   "(block-framed), got '" +
                   parsed.getString("trace-format") + "'";
        if (format < 3 && parsed.getBool("salvage-blocks"))
            return "--salvage-blocks needs --trace-format 3 (the legacy "
                   "format has no block framing to salvage)";
        return "";
    });
    options.addValidator([](const Options &parsed) -> std::string {
        if (parsed.getInt("mem-budget") < 0)
            return "--mem-budget MB must be >= 0 (0 = unlimited)";
        if (parsed.getInt("cache-gc-days") < 0)
            return "--cache-gc-days DAYS must be >= 0 (0 = keep "
                   "quarantined files forever)";
        return "";
    });
}

void
declareStandardOptions(Options &options, std::uint64_t default_insts)
{
    options.declare("insts", std::to_string(default_insts),
                    "dynamic instructions captured per benchmark");
    options.declare("benchmarks", "",
                    "comma-separated benchmark subset (default: all 8)");
    options.declare("csv", "",
                    "append the figure data to this CSV file "
                    "(figure,benchmark,configuration,value)");
    options.declare("scale", "1",
                    "workload input-set scale factor (SPEC-style "
                    "test/train/ref sizing)");
    options.declare("seed", "0", "workload input-data seed");
    options.declare("skip", "0",
                    "warm-up instructions to execute and discard before "
                    "the measured window");
    declareRunnerOptions(options);
}

void
declarePredictorOption(Options &options,
                       const std::string &default_kind)
{
    options.declare("predictor", default_kind,
                    "value predictor kind: last-value / stride / "
                    "2-delta / hybrid / fcm");
}

void
validateBenchmarkNames(const std::vector<std::string> &names)
{
    const std::vector<std::string> &valid = workloadNames();
    for (const std::string &name : names) {
        if (std::find(valid.begin(), valid.end(), name) != valid.end())
            continue;
        std::string message =
            "unknown benchmark '" + name + "'; valid names:";
        for (const std::string &known : valid)
            message += " " + known;
        fatal(message);
    }
}

BenchmarkTraces
captureBenchmarks(const Options &options)
{
    const std::uint64_t insts =
        static_cast<std::uint64_t>(options.getInt("insts"));
    fatalIf(insts == 0, "--insts must be positive");
    SimRunner runner(options);
    return runner.captureBenchmarks();
}

std::string
renderFigureTable(const std::string &title,
                  const std::vector<std::string> &row_names,
                  const std::vector<std::string> &column_names,
                  const std::vector<std::vector<double>> &cells,
                  const std::function<std::string(double)> &render)
{
    panicIf(cells.size() != row_names.size(),
            "figure table row count mismatch");

    std::vector<std::string> header;
    header.push_back("benchmark");
    header.insert(header.end(), column_names.begin(), column_names.end());
    TablePrinter table(title, header);

    for (std::size_t row = 0; row < row_names.size(); ++row) {
        panicIf(cells[row].size() != column_names.size(),
                "figure table column count mismatch");
        std::vector<std::string> line;
        line.push_back(row_names[row]);
        for (const double value : cells[row])
            line.push_back(render(value));
        table.addRow(line);
    }

    // Average row, per column, as in the paper's "avg" bars.
    table.addSeparator();
    std::vector<std::string> avg_line;
    avg_line.push_back("avg");
    for (std::size_t col = 0; col < column_names.size(); ++col) {
        std::vector<double> column;
        for (std::size_t row = 0; row < row_names.size(); ++row)
            column.push_back(cells[row][col]);
        avg_line.push_back(render(arithmeticMean(column)));
    }
    table.addRow(avg_line);

    return table.render();
}

void
maybeWriteCsv(const Options &options, const std::string &figure_id,
              const std::vector<std::string> &row_names,
              const std::vector<std::string> &column_names,
              const std::vector<std::vector<double>> &cells)
{
    const std::string path = options.getString("csv");
    if (path.empty())
        return;
    std::FILE *file = std::fopen(path.c_str(), "a");
    fatalIf(!file, "cannot open CSV file " + path);
    for (std::size_t row = 0; row < row_names.size(); ++row) {
        for (std::size_t col = 0; col < column_names.size(); ++col) {
            std::fprintf(file, "%s,%s,%s,%.9g\n", figure_id.c_str(),
                         row_names[row].c_str(),
                         column_names[col].c_str(), cells[row][col]);
        }
    }
    std::fclose(file);
    std::fprintf(stderr, "appended %zu rows to %s\n",
                 row_names.size() * column_names.size(), path.c_str());
    // Provenance sidecar: every CSV ships with a signed manifest
    // (run_manifest.hpp) so figures can be traced back to the exact
    // experiment and source revision that produced them.
    writeRunManifest(options, path);
}

std::string
renderPercentTable(const std::string &title,
                   const std::vector<std::string> &row_names,
                   const std::vector<std::string> &column_names,
                   const std::vector<std::vector<double>> &cells)
{
    return renderFigureTable(
        title, row_names, column_names, cells,
        [](double value) { return TablePrinter::percentCell(value); });
}

} // namespace vpsim
