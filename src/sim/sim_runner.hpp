/**
 * @file
 * The experiment runtime: a fault-tolerant job-scheduling driver for
 * figure sweeps.
 *
 * Every figure/ablation bench is a grid of independent simulation
 * points — (benchmark × configuration) closures, each a pure function
 * of an immutable trace returning one numeric cell. SimRunner executes
 * such grids on a work-stealing thread pool (--jobs, default: hardware
 * concurrency) with deterministic cell placement: each job writes only
 * its own preassigned slot, so parallel output is bit-identical to
 * `--jobs 1`.
 *
 * Trace capture goes through the same pool and, when --trace-cache-dir
 * is given, through an on-disk TraceCacheStore, so the eight workload
 * traces are captured once per machine instead of once per bench
 * binary. Corrupt cache entries are quarantined and recaptured; an
 * unusable cache directory degrades the run to uncached in-memory
 * capture with a one-line warning — faults never change results, only
 * wall clock. Wall-clock and cache hit/miss statistics are published
 * through the stats registry (reportStats()).
 *
 * Failure isolation (long campaigns must survive, not restart):
 *  - `--keep-going`: a throwing job is recorded as a per-job failure
 *    and its cells stay NaN; the batch completes and the failure list
 *    is reported instead of aborting the sweep.
 *  - SIGINT/SIGTERM are handled cooperatively: in-flight jobs drain,
 *    queued jobs are skipped, the grid's finished cells are flushed to
 *    the `--checkpoint` file, and the process exits 128+signal.
 *  - `--resume`: finished cells (keyed by a hash of the experiment
 *    fingerprint + grid + row/col) are reloaded from the checkpoint
 *    file, so an interrupted sweep continues instead of restarting.
 *  - `--fault-inject`: arms the deterministic fault injector
 *    (common/io.hpp) for soak-testing all of the above.
 *
 * Typical bench structure:
 *
 *   Options options;
 *   declareStandardOptions(options, 200000);
 *   options.parse(argc, argv, "...");
 *   SimRunner runner(options);
 *   const BenchmarkTraces bench = runner.captureBenchmarks();
 *   const auto cells = runner.runGrid(bench.size(), configs.size(),
 *       [&](std::size_t row, std::size_t col) {
 *           return simulate(bench.trace(row), configs[col]);
 *       });
 *   ... render cells ...
 *   runner.reportStats();
 */

#ifndef VPSIM_SIM_SIM_RUNNER_HPP
#define VPSIM_SIM_SIM_RUNNER_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.hpp"
#include "common/options.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "sim/experiment.hpp"
#include "trace/streaming_source.hpp"
#include "trace/trace_cache_store.hpp"
#include "workloads/workload.hpp"

namespace vpsim
{

/**
 * One schedulable simulation point.
 *
 * The closure must be a pure function of state owned or shared-const
 * before run() is called, and must write only to slots no other job
 * writes — that is what makes parallel execution deterministic.
 */
struct SimJob
{
    /** Shown in error messages and per-job stats. */
    std::string label;
    std::function<void()> execute;
};

/** One job that threw under --keep-going. */
struct JobFailure
{
    std::string label;
    std::string error;
};

/** Executes SimJob grids on a shared thread pool with a trace cache. */
class SimRunner
{
  public:
    /**
     * @param options Parsed options; reads --jobs, --trace-cache-dir,
     *        --keep-going, --checkpoint, --resume and --fault-inject
     *        (declared by declareRunnerOptions()). The runner keeps a
     *        reference, so @p options must outlive it. Installs
     *        cooperative SIGINT/SIGTERM handlers (restored by the
     *        destructor).
     */
    explicit SimRunner(const Options &options);
    ~SimRunner();

    SimRunner(const SimRunner &) = delete;
    SimRunner &operator=(const SimRunner &) = delete;

    /** Worker threads executing jobs (the resolved --jobs value). */
    unsigned jobs() const { return pool.threadCount(); }

    /** Non-null when --trace-cache-dir was given and the dir is usable. */
    const TraceCacheStore *traceCache() const { return cache.get(); }

    /**
     * Run @p batch to completion on the pool.
     *
     * Jobs start in declaration order (round-robin across workers) and
     * may finish in any order; determinism comes from each job owning
     * its output slots. Without --keep-going the first exception thrown
     * by a job is rethrown here after the batch drains; with it, the
     * failure is recorded (failures()) and the batch completes. If a
     * SIGINT/SIGTERM arrived, queued jobs are skipped, the active
     * grid's checkpoint is flushed, and the process exits 128+signal.
     */
    void run(std::vector<SimJob> batch);

    /**
     * Declare-and-run a dense rows × cols grid.
     *
     * Cells start as NaN; a job that fails under --keep-going leaves
     * NaN in its cell. With --resume, cells recorded in the
     * --checkpoint file are loaded and their jobs never run.
     *
     * When the bench supplies @p reference and --cross-check N is
     * given, a deterministic sample of N cells (chosen by checkpoint
     * key, so the sample is stable across --jobs values and reruns) is
     * re-simulated on the golden-reference model after the primary
     * result is computed; any divergence beyond 1e-9 relative error is
     * an internal-consistency failure — the cell reverts to NaN and the
     * job fails like any other model bug (NaN cell under --keep-going,
     * abort otherwise). Benches with no reference model simply omit the
     * argument and --cross-check is a no-op for them.
     *
     * @param cell Invoked once per (row, col), possibly concurrently;
     *        must be pure (see SimJob).
     * @param reference Optional naive re-computation of @p cell on an
     *        independent model (core/reference_machine.hpp).
     * @return cells[row][col] — identical for any --jobs value.
     */
    std::vector<std::vector<double>> runGrid(
        std::size_t rows, std::size_t cols,
        const std::function<double(std::size_t row, std::size_t col)>
            &cell,
        const std::function<double(std::size_t row, std::size_t col)>
            &reference = {});

    /**
     * Capture traces for the benchmarks requested by the options
     * (--benchmarks/--insts/--scale/--seed/--skip), in parallel, through
     * the trace cache when one is configured. Unknown benchmark names
     * are fatal, with the list of valid names.
     */
    BenchmarkTraces captureBenchmarks();

    /**
     * Capture (or load from the cache) a single trace. Safe to call
     * from inside a running job: the capture executes on the calling
     * thread, not the pool.
     */
    TraceHandle captureTrace(const std::string &name,
                             std::uint64_t insts, std::uint64_t skip,
                             const WorkloadParams &params);

    /**
     * Jobs that threw under --keep-going. Returns a snapshot taken
     * under the failures lock: job threads append concurrently while a
     * batch is running, so handing out a reference would hand out a
     * race.
     */
    std::vector<JobFailure> failures() const EXCLUDES(failuresMutex);

    /** Grid cells served from the checkpoint file by --resume. */
    std::uint64_t resumedCells() const { return resumedCellCount; }

    /** Cells re-simulated (and agreeing) on the reference model. */
    std::uint64_t crossCheckedCells() const
    {
        return crossCheckedCellCount.load();
    }

    /** Jobs canceled by the --job-timeout watchdog. */
    std::uint64_t timedOutJobs() const { return timedOutJobCount.load(); }

    /** Trace format version captures use (--trace-format: 2 or 3). */
    std::uint32_t traceFormat() const { return captureFormatVersion; }

    /** --salvage-blocks: quarantine + skip corrupt v3 blocks. */
    bool salvageBlocks() const { return salvageBlocksEnabled; }

    /** --mem-budget converted to bytes (0 = unlimited). */
    std::uint64_t memBudgetBytes() const { return memBudget; }

    /**
     * Streaming-source knobs derived from the runner's options
     * (--salvage-blocks, --mem-budget), for benches that stream a v3
     * trace instead of materializing it.
     */
    StreamingOptions streamingOptions() const;

    /**
     * Print the runtime's summary to stderr: jobs run, threads, wall
     * and cpu time, trace-cache hits/misses when a cache is
     * configured, and the per-job failure report when --keep-going
     * recorded any. With --stats, additionally dump the full stats
     * registry group. stdout is never touched, so tables and --csv
     * stay byte-identical across --jobs values.
     */
    void reportStats() const;

  private:
    /** Per-grid checkpoint bookkeeping, alive during runGrid()'s run(). */
    struct GridState
    {
        std::size_t rows = 0;
        std::size_t cols = 0;
        std::vector<std::uint64_t> keys;
        std::vector<std::vector<double>> *cells = nullptr;
        std::unique_ptr<std::atomic<bool>[]> done;
    };

    std::uint64_t cellKey(std::uint64_t grid, std::size_t row,
                          std::size_t col) const;
    void flushCheckpoint() const;
    [[noreturn]] void exitOnSignal(int signal_number);
    void recordFailure(const std::string &label,
                       const std::string &error)
        EXCLUDES(failuresMutex);
    void watchdogLoop() EXCLUDES(watchdogMutex);

    const Options &options;
    ThreadPool pool;
    std::unique_ptr<TraceCacheStore> cache;

    bool keepGoing = false;
    std::string checkpointPath;
    bool resumeRequested = false;
    /** --cross-check N: reference-model cells per grid (0 = off). */
    std::uint64_t crossCheckCells = 0;
    /** --job-timeout in seconds (0 = watchdog disabled). */
    double jobTimeoutSeconds = 0.0;
    /** Hash of the experiment-defining options (checkpoint keying). */
    std::uint64_t configHash = 0;
    std::uint64_t gridOrdinal = 0;
    GridState *activeGrid = nullptr;
    std::uint64_t resumedCellCount = 0;

    /** mutable: reportStats()/failures() are const but must lock. */
    mutable Mutex failuresMutex;
    std::vector<JobFailure> jobFailures GUARDED_BY(failuresMutex);

    /**
     * One executing job as seen by the watchdog: its cancellation
     * token plus the progress value/time the watchdog last saw. Nodes
     * live in a std::list so job threads can unlink themselves in O(1)
     * without invalidating the monitor's iteration.
     */
    struct ActiveJob
    {
        std::string label;
        CancellationToken *token = nullptr;
        std::uint64_t lastProgress = 0;
        std::chrono::steady_clock::time_point lastProgressTime;
    };
    Mutex watchdogMutex;
    std::condition_variable watchdogWake;
    std::list<ActiveJob> activeJobs GUARDED_BY(watchdogMutex);
    bool watchdogStop GUARDED_BY(watchdogMutex) = false;
    std::thread watchdogThread;

    std::atomic<std::uint64_t> crossCheckedCellCount{0};
    std::atomic<std::uint64_t> timedOutJobCount{0};

    /** One-shot latch for the cache-degradation warning. */
    std::atomic<bool> cacheDegraded{false};

    /** --trace-format: format version new captures are stored in. */
    std::uint32_t captureFormatVersion = traceFormatVersion;
    /** --salvage-blocks: block-level corruption containment. */
    bool salvageBlocksEnabled = false;
    /** --mem-budget in bytes (0 = unlimited). */
    std::uint64_t memBudget = 0;
    /** One-shot latch for the over-budget RSS warning. */
    mutable std::atomic<bool> memBudgetWarned{false};

    std::atomic<std::uint64_t> jobsRun{0};
    std::atomic<std::uint64_t> jobMicros{0};
    std::atomic<std::uint64_t> wallMicros{0};
    std::atomic<std::uint64_t> capturesRun{0};
    std::atomic<std::uint64_t> captureMicros{0};

    /** Previous signal dispositions, restored on destruction. */
    void (*previousSigint)(int) = nullptr;
    void (*previousSigterm)(int) = nullptr;
};

} // namespace vpsim

#endif // VPSIM_SIM_SIM_RUNNER_HPP
