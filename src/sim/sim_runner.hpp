/**
 * @file
 * The experiment runtime: a job-scheduling driver for figure sweeps.
 *
 * Every figure/ablation bench is a grid of independent simulation
 * points — (benchmark × configuration) closures, each a pure function
 * of an immutable trace returning one numeric cell. SimRunner executes
 * such grids on a work-stealing thread pool (--jobs, default: hardware
 * concurrency) with deterministic cell placement: each job writes only
 * its own preassigned slot, so parallel output is bit-identical to
 * `--jobs 1`.
 *
 * Trace capture goes through the same pool and, when --trace-cache-dir
 * is given, through an on-disk TraceCacheStore, so the eight workload
 * traces are captured once per machine instead of once per bench
 * binary. Wall-clock and cache hit/miss statistics are published
 * through the stats registry (reportStats()).
 *
 * Typical bench structure:
 *
 *   Options options;
 *   declareStandardOptions(options, 200000);
 *   options.parse(argc, argv, "...");
 *   SimRunner runner(options);
 *   const BenchmarkTraces bench = runner.captureBenchmarks();
 *   const auto cells = runner.runGrid(bench.size(), configs.size(),
 *       [&](std::size_t row, std::size_t col) {
 *           return simulate(bench.trace(row), configs[col]);
 *       });
 *   ... render cells ...
 *   runner.reportStats();
 */

#ifndef VPSIM_SIM_SIM_RUNNER_HPP
#define VPSIM_SIM_SIM_RUNNER_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "common/thread_pool.hpp"
#include "sim/experiment.hpp"
#include "trace/trace_cache_store.hpp"
#include "workloads/workload.hpp"

namespace vpsim
{

/**
 * One schedulable simulation point.
 *
 * The closure must be a pure function of state owned or shared-const
 * before run() is called, and must write only to slots no other job
 * writes — that is what makes parallel execution deterministic.
 */
struct SimJob
{
    /** Shown in error messages and per-job stats. */
    std::string label;
    std::function<void()> execute;
};

/** Executes SimJob grids on a shared thread pool with a trace cache. */
class SimRunner
{
  public:
    /**
     * @param options Parsed options; reads --jobs and --trace-cache-dir
     *        (declared by declareRunnerOptions()). The runner keeps a
     *        reference, so @p options must outlive it.
     */
    explicit SimRunner(const Options &options);
    ~SimRunner();

    SimRunner(const SimRunner &) = delete;
    SimRunner &operator=(const SimRunner &) = delete;

    /** Worker threads executing jobs (the resolved --jobs value). */
    unsigned jobs() const { return pool.threadCount(); }

    /** Non-null when --trace-cache-dir was given. */
    const TraceCacheStore *traceCache() const { return cache.get(); }

    /**
     * Run @p batch to completion on the pool.
     *
     * Jobs start in declaration order (round-robin across workers) and
     * may finish in any order; determinism comes from each job owning
     * its output slots. The first exception thrown by a job is rethrown
     * here after the batch drains.
     */
    void run(std::vector<SimJob> batch);

    /**
     * Declare-and-run a dense rows × cols grid.
     *
     * @param cell Invoked once per (row, col), possibly concurrently;
     *        must be pure (see SimJob).
     * @return cells[row][col] — identical for any --jobs value.
     */
    std::vector<std::vector<double>> runGrid(
        std::size_t rows, std::size_t cols,
        const std::function<double(std::size_t row, std::size_t col)>
            &cell);

    /**
     * Capture traces for the benchmarks requested by the options
     * (--benchmarks/--insts/--scale/--seed/--skip), in parallel, through
     * the trace cache when one is configured. Unknown benchmark names
     * are fatal, with the list of valid names.
     */
    BenchmarkTraces captureBenchmarks();

    /**
     * Capture (or load from the cache) a single trace. Safe to call
     * from inside a running job: the capture executes on the calling
     * thread, not the pool.
     */
    TraceHandle captureTrace(const std::string &name,
                             std::uint64_t insts, std::uint64_t skip,
                             const WorkloadParams &params);

    /**
     * Print the runtime's summary to stderr: jobs run, threads, wall
     * and cpu time, and trace-cache hits/misses when a cache is
     * configured. With --stats, additionally dump the full stats
     * registry group. stdout is never touched, so tables and --csv
     * stay byte-identical across --jobs values.
     */
    void reportStats() const;

  private:
    const Options &options;
    ThreadPool pool;
    std::unique_ptr<TraceCacheStore> cache;

    std::atomic<std::uint64_t> jobsRun{0};
    std::atomic<std::uint64_t> jobMicros{0};
    std::atomic<std::uint64_t> wallMicros{0};
    std::atomic<std::uint64_t> capturesRun{0};
    std::atomic<std::uint64_t> captureMicros{0};
};

} // namespace vpsim

#endif // VPSIM_SIM_SIM_RUNNER_HPP
