#include "sim/sim_runner.hpp"

#include <chrono>
#include <cstdio>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "trace/trace_stats.hpp"

namespace vpsim
{

namespace
{

std::uint64_t
microsSince(std::chrono::steady_clock::time_point start)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

unsigned
resolveJobCount(const Options &options)
{
    const std::int64_t jobs = options.getInt("jobs");
    fatalIf(jobs < 0, "--jobs must be >= 0 (0 = hardware concurrency)");
    return jobs == 0 ? ThreadPool::defaultThreadCount()
                     : static_cast<unsigned>(jobs);
}

} // namespace

SimRunner::SimRunner(const Options &options_in)
    : options(options_in), pool(resolveJobCount(options_in))
{
    const std::string cache_dir = options.getString("trace-cache-dir");
    if (!cache_dir.empty())
        cache = std::make_unique<TraceCacheStore>(cache_dir);
}

SimRunner::~SimRunner() = default;

void
SimRunner::run(std::vector<SimJob> batch)
{
    const auto wall_start = std::chrono::steady_clock::now();
    for (SimJob &job : batch) {
        pool.submit([this, job = std::move(job)] {
            const auto start = std::chrono::steady_clock::now();
            job.execute();
            jobMicros += microsSince(start);
            ++jobsRun;
        });
    }
    pool.wait();
    wallMicros += microsSince(wall_start);
}

std::vector<std::vector<double>>
SimRunner::runGrid(
    std::size_t rows, std::size_t cols,
    const std::function<double(std::size_t, std::size_t)> &cell)
{
    std::vector<std::vector<double>> cells(
        rows, std::vector<double>(cols, 0.0));
    std::vector<SimJob> batch;
    batch.reserve(rows * cols);
    for (std::size_t row = 0; row < rows; ++row) {
        for (std::size_t col = 0; col < cols; ++col) {
            batch.push_back(
                {"cell[" + std::to_string(row) + "][" +
                     std::to_string(col) + "]",
                 [&cells, &cell, row, col] {
                     cells[row][col] = cell(row, col);
                 }});
        }
    }
    run(std::move(batch));
    return cells;
}

TraceHandle
SimRunner::captureTrace(const std::string &name, std::uint64_t insts,
                        std::uint64_t skip,
                        const WorkloadParams &params)
{
    fatalIf(insts == 0, "--insts must be positive");
    const TraceCacheKey key{name, insts, skip, params.scale,
                            params.seed, traceFormatVersion};
    if (cache) {
        std::vector<TraceRecord> records;
        Status error = Status::ok();
        if (cache->tryLoad(key, &records, &error)) {
            return std::make_shared<const std::vector<TraceRecord>>(
                std::move(records));
        }
        if (!error.isOk())
            warn(error.message() + "; recapturing");
    }

    const auto start = std::chrono::steady_clock::now();
    auto trace = captureWorkloadTrace(name, insts + skip, params);
    if (skip > 0)
        trace = sliceTrace(trace, skip);
    captureMicros += microsSince(start);
    ++capturesRun;

    if (cache) {
        const Status stored = cache->store(key, trace);
        if (!stored.isOk())
            warn(stored.message());
    }
    return std::make_shared<const std::vector<TraceRecord>>(
        std::move(trace));
}

BenchmarkTraces
SimRunner::captureBenchmarks()
{
    const std::uint64_t insts =
        static_cast<std::uint64_t>(options.getInt("insts"));
    std::vector<std::string> names = options.getList("benchmarks");
    if (names.empty())
        names = workloadNames();
    validateBenchmarkNames(names);

    WorkloadParams params;
    params.scale = static_cast<unsigned>(options.getInt("scale"));
    params.seed = static_cast<std::uint64_t>(options.getInt("seed"));
    const auto skip =
        static_cast<std::uint64_t>(options.getInt("skip"));

    BenchmarkTraces result;
    result.names = names;
    result.traces.resize(names.size());
    std::vector<SimJob> batch;
    batch.reserve(names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        batch.push_back(
            {"capture:" + names[i], [this, &result, &names, i, insts,
                                     skip, params] {
                 result.traces[i] =
                     captureTrace(names[i], insts, skip, params);
             }});
    }
    run(std::move(batch));
    return result;
}

void
SimRunner::reportStats() const
{
    std::fprintf(stderr,
                 "sim: %llu jobs on %u threads, wall %.0f ms, "
                 "job cpu %.0f ms (%llu VM captures, %.0f ms)\n",
                 static_cast<unsigned long long>(jobsRun.load()),
                 pool.threadCount(),
                 static_cast<double>(wallMicros.load()) / 1000.0,
                 static_cast<double>(jobMicros.load()) / 1000.0,
                 static_cast<unsigned long long>(capturesRun.load()),
                 static_cast<double>(captureMicros.load()) / 1000.0);
    if (cache) {
        std::fprintf(
            stderr, "trace cache: %llu hits, %llu misses (%s)\n",
            static_cast<unsigned long long>(cache->hits()),
            static_cast<unsigned long long>(cache->misses()),
            cache->directory().c_str());
    }
    if (!options.getBool("stats"))
        return;

    // Publish through the stats registry for uniform tooling.
    Counter jobs_counter, job_micros, wall, captures, capture_time;
    Counter cache_hits, cache_lookups;
    jobs_counter += jobsRun.load();
    job_micros += jobMicros.load();
    wall += wallMicros.load();
    captures += capturesRun.load();
    capture_time += captureMicros.load();
    StatGroup group("sim_runner");
    group.addCounter("jobs", jobs_counter, "simulation jobs executed");
    group.addCounter("job_micros", job_micros,
                     "summed per-job wall clock (us)");
    group.addCounter("wall_micros", wall,
                     "end-to-end batch wall clock (us)");
    group.addCounter("vm_captures", captures,
                     "workload traces captured by the VM");
    group.addCounter("vm_capture_micros", capture_time,
                     "wall clock spent capturing traces (us)");
    if (cache) {
        cache_hits += cache->hits();
        cache_lookups += cache->hits() + cache->misses();
        group.addCounter("trace_cache_hits", cache_hits,
                         "captures served from the on-disk cache");
        group.addRatio("trace_cache_hit_rate", cache_hits,
                       cache_lookups, "hits / lookups");
    }
    std::fputs(group.dump().c_str(), stderr);
}

} // namespace vpsim
