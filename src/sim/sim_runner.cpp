#include "sim/sim_runner.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "common/invariant.hpp"
#include "common/io.hpp"
#include "common/logging.hpp"
#include "common/resource_usage.hpp"
#include "common/stats.hpp"
#include "trace/trace_stats.hpp"
#include "trace/trace_v3.hpp"

namespace vpsim
{

namespace
{

std::uint64_t
microsSince(std::chrono::steady_clock::time_point start)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

unsigned
resolveJobCount(const Options &options)
{
    const std::int64_t jobs = options.getInt("jobs");
    fatalIf(jobs < 0, "--jobs must be >= 0 (0 = hardware concurrency)");
    return jobs == 0 ? ThreadPool::defaultThreadCount()
                     : static_cast<unsigned>(jobs);
}

/** FNV-1a 64-bit over @p text, folded with @p seed. */
std::uint64_t
fnv1a(const std::string &text, std::uint64_t seed = 0)
{
    std::uint64_t hash = 14695981039346656037ull ^ seed;
    for (const char ch : text) {
        hash ^= static_cast<unsigned char>(ch);
        hash *= 1099511628211ull;
    }
    return hash;
}

/**
 * The signal last caught by the cooperative handler (0 = none). Global
 * because signal handlers cannot carry state; consumed by the runner
 * that notices it after its batch drains.
 */
std::atomic<int> g_caughtSignal{0};

extern "C" void
simRunnerSignalHandler(int signal_number)
{
    // First signal: request a cooperative drain (async-signal-safe:
    // just an atomic store). Second signal: the user really means it.
    if (g_caughtSignal.exchange(signal_number) != 0)
        std::_Exit(128 + signal_number);
}

constexpr char checkpointMagic[] = "vpsim-grid-checkpoint 1";

/**
 * Load a checkpoint file into key -> cell-value-bits. A missing file
 * is a fresh start; a malformed one is ignored with a warning (the
 * sweep recomputes, which is always safe).
 */
std::unordered_map<std::uint64_t, std::uint64_t>
loadCheckpoint(const std::string &path)
{
    std::unordered_map<std::uint64_t, std::uint64_t> cells;
    std::ifstream in(path);
    if (!in)
        return cells;
    std::string magic;
    std::getline(in, magic);
    if (magic != checkpointMagic) {
        warn("ignoring malformed checkpoint file " + path);
        return cells;
    }
    std::uint64_t key = 0;
    std::uint64_t value_bits = 0;
    while (in >> std::hex >> key >> value_bits)
        cells[key] = value_bits;
    return cells;
}

std::uint64_t
doubleToBits(double value)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

double
bitsToDouble(std::uint64_t bits)
{
    double value = 0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

} // namespace

SimRunner::SimRunner(const Options &options_in)
    : options(options_in), pool(resolveJobCount(options_in))
{
    io::configureFaultInjection(options.getString("fault-inject"));
    keepGoing = options.getBool("keep-going");
    checkpointPath = options.getString("checkpoint");
    resumeRequested = options.getBool("resume");
    fatalIf(resumeRequested && checkpointPath.empty(),
            "--resume requires --checkpoint FILE");

    setInvariantLevel(
        invariantLevelFromString(options.getString("check-invariants")));
    const std::int64_t cross_check = options.getInt("cross-check");
    fatalIf(cross_check < 0, "--cross-check must be >= 0");
    crossCheckCells = static_cast<std::uint64_t>(cross_check);
    jobTimeoutSeconds = options.getDouble("job-timeout");
    fatalIf(jobTimeoutSeconds < 0, "--job-timeout must be >= 0");

    const std::int64_t format = options.getInt("trace-format");
    fatalIf(format != 2 && format != 3,
            "--trace-format must be 2 or 3");
    captureFormatVersion = format >= 3 ? traceFormatVersionV3
                                       : traceFormatVersion;
    salvageBlocksEnabled = options.getBool("salvage-blocks");
    memBudget = static_cast<std::uint64_t>(options.getInt("mem-budget"))
                << 20;

    // Checkpoint cells are keyed by everything that determines results
    // (insts, benchmarks, seed, ...) but not by how the run executes
    // (--jobs, cache dir, fault spec, self-check level): a resumed run
    // may use different parallelism or verification settings, and a
    // differently-configured sweep never matches. --trace-format and
    // --salvage-blocks are in the execution set too: the v3 round trip
    // is lossless and salvage only matters when disk corruption
    // strikes, so neither changes what a cell computes.
    configHash = fnv1a(options.fingerprint(
        {"jobs", "trace-cache-dir", "stats", "keep-going", "checkpoint",
         "resume", "fault-inject", "check-invariants", "cross-check",
         "job-timeout", "trace-format", "salvage-blocks", "mem-budget",
         "cache-gc-days"}));

    const std::string cache_dir = options.getString("trace-cache-dir");
    if (!cache_dir.empty()) {
        const auto gc_age = std::chrono::seconds(
            options.getInt("cache-gc-days") * 24 * 3600);
        cache = std::make_unique<TraceCacheStore>(
            cache_dir, TraceCacheStore::defaultTmpReapAge, gc_age);
        cache->setSalvageBlocks(salvageBlocksEnabled);
        if (!cache->status().isOk()) {
            warn("trace cache disabled; capturing uncached: " +
                 cache->status().message());
            cache.reset();
        }
    }

    previousSigint = std::signal(SIGINT, simRunnerSignalHandler);
    previousSigterm = std::signal(SIGTERM, simRunnerSignalHandler);

    if (jobTimeoutSeconds > 0.0)
        watchdogThread = std::thread([this] { watchdogLoop(); });
}

SimRunner::~SimRunner()
{
    if (watchdogThread.joinable()) {
        {
            MutexLock lock(watchdogMutex);
            watchdogStop = true;
        }
        watchdogWake.notify_all();
        watchdogThread.join();
    }
    if (previousSigint != SIG_ERR)
        std::signal(SIGINT, previousSigint);
    if (previousSigterm != SIG_ERR)
        std::signal(SIGTERM, previousSigterm);
}

void
SimRunner::watchdogLoop()
{
    using Seconds = std::chrono::duration<double>;
    const Seconds timeout(jobTimeoutSeconds);
    // Poll fast enough that sub-second timeouts (used by the tests)
    // detect the stall promptly, but never busier than 10 Hz.
    const Seconds poll(
        std::clamp(jobTimeoutSeconds / 4.0, 0.001, 0.1));

    MutexLock lock(watchdogMutex);
    while (!watchdogStop) {
        watchdogWake.wait_for(lock.native(), poll);
        if (watchdogStop)
            break;
        const auto now = std::chrono::steady_clock::now();
        for (ActiveJob &job : activeJobs) {
            const std::uint64_t progress = job.token->progress();
            if (progress != job.lastProgress) {
                job.lastProgress = progress;
                job.lastProgressTime = now;
                continue;
            }
            if (now - job.lastProgressTime < timeout ||
                job.token->canceled())
                continue;
            // Cancellation is cooperative: the job notices at its next
            // simHeartbeat() and unwinds with a kTimeout status. Dump
            // the experiment fingerprint so the offending point can be
            // reproduced in isolation.
            job.token->requestCancel();
            ++timedOutJobCount;
            warn("watchdog: job '" + job.label +
                 "' made no progress for " +
                 std::to_string(jobTimeoutSeconds) +
                 " s; canceling (experiment: " + options.fingerprint() +
                 ")");
        }
    }
}

std::vector<JobFailure>
SimRunner::failures() const
{
    MutexLock lock(failuresMutex);
    return jobFailures;
}

void
SimRunner::recordFailure(const std::string &label,
                         const std::string &error)
{
    {
        MutexLock lock(failuresMutex);
        jobFailures.push_back({label, error});
    }
    warn("job '" + label + "' failed: " + error +
         " (--keep-going: its cells stay NaN)");
}

void
SimRunner::run(std::vector<SimJob> batch)
{
    const auto wall_start = std::chrono::steady_clock::now();
    for (SimJob &job : batch) {
        pool.submit([this, job = std::move(job)] {
            if (g_caughtSignal.load(std::memory_order_relaxed) != 0)
                return; // cooperative drain: skip still-queued work
            const io::FaultKind fault = io::faultInjector().next("job");
            if (fault == io::FaultKind::Sigint) {
                std::raise(SIGINT);
                return;
            }
            const auto start = std::chrono::steady_clock::now();

            // Give the job a cancellation token and, when the watchdog
            // is armed, register it in the active list. The guard's
            // destructor tears both down on every exit path, including
            // the rethrow below.
            CancellationToken token;
            const bool watched = jobTimeoutSeconds > 0.0;
            std::list<ActiveJob>::iterator active_it;
            if (watched) {
                MutexLock lock(watchdogMutex);
                activeJobs.push_back({job.label, &token, 0,
                                      std::chrono::steady_clock::now()});
                active_it = std::prev(activeJobs.end());
            }
            setCurrentCancellationToken(&token);
            struct TokenScope
            {
                SimRunner *runner;
                std::list<ActiveJob>::iterator it;
                bool watched;
                ~TokenScope()
                {
                    setCurrentCancellationToken(nullptr);
                    if (!watched)
                        return;
                    MutexLock lock(runner->watchdogMutex);
                    runner->activeJobs.erase(it);
                }
            } scope{this, active_it, watched};

            try {
                if (fault != io::FaultKind::None)
                    throw std::runtime_error("injected fault: job " +
                                             job.label);
                job.execute();
            } catch (const JobCanceledError &e) {
                // Watchdog cancellation: a kTimeout failure, reported
                // with its status code so timeouts are distinguishable
                // from model bugs in the failure list.
                if (!keepGoing)
                    throw;
                recordFailure(job.label,
                              std::string("[") +
                                  statusCodeName(e.status().code()) +
                                  "] " + e.what());
                return;
            } catch (const InvariantViolation &e) {
                // Self-check failure: the model broke its own
                // contract (kInternal), not the input.
                if (!keepGoing)
                    throw;
                recordFailure(job.label,
                              std::string("[") +
                                  statusCodeName(e.status().code()) +
                                  "] " + e.what());
                return;
            } catch (const std::exception &e) {
                if (!keepGoing)
                    throw;
                recordFailure(job.label, e.what());
                return;
            } catch (...) {
                if (!keepGoing)
                    throw;
                recordFailure(job.label, "unknown exception");
                return;
            }
            jobMicros += microsSince(start);
            ++jobsRun;
        });
    }
    pool.wait();
    wallMicros += microsSince(wall_start);

    const int signal_number = g_caughtSignal.load();
    if (signal_number != 0)
        exitOnSignal(signal_number);
}

std::uint64_t
SimRunner::cellKey(std::uint64_t grid, std::size_t row,
                   std::size_t col) const
{
    return fnv1a("g" + std::to_string(grid) + "r" + std::to_string(row) +
                     "c" + std::to_string(col),
                 configHash);
}

std::vector<std::vector<double>>
SimRunner::runGrid(
    std::size_t rows, std::size_t cols,
    const std::function<double(std::size_t, std::size_t)> &cell,
    const std::function<double(std::size_t, std::size_t)> &reference)
{
    const std::uint64_t grid_id = ++gridOrdinal;
    // NaN until a job writes the cell: failed (--keep-going) and
    // signal-skipped cells are visibly absent, never silently zero.
    std::vector<std::vector<double>> cells(
        rows, std::vector<double>(
                  cols, std::numeric_limits<double>::quiet_NaN()));

    GridState grid;
    grid.rows = rows;
    grid.cols = cols;
    grid.cells = &cells;
    grid.keys.resize(rows * cols);
    grid.done = std::make_unique<std::atomic<bool>[]>(rows * cols);
    for (std::size_t idx = 0; idx < rows * cols; ++idx) {
        grid.keys[idx] = cellKey(grid_id, idx / cols, idx % cols);
        grid.done[idx].store(false, std::memory_order_relaxed);
    }

    std::size_t resumed = 0;
    if (resumeRequested) {
        const auto saved = loadCheckpoint(checkpointPath);
        for (std::size_t idx = 0; idx < rows * cols; ++idx) {
            const auto it = saved.find(grid.keys[idx]);
            if (it == saved.end())
                continue;
            cells[idx / cols][idx % cols] = bitsToDouble(it->second);
            grid.done[idx].store(true, std::memory_order_relaxed);
            ++resumed;
        }
        if (resumed > 0) {
            std::fprintf(stderr,
                         "sim: resumed %zu of %zu cells from %s\n",
                         resumed, rows * cols, checkpointPath.c_str());
        }
    }
    resumedCellCount += resumed;

    // Deterministic --cross-check sample: the N cells with the
    // smallest checkpoint keys among those actually being computed.
    // The keys are a hash of (experiment fingerprint, grid, row, col),
    // so the sample is effectively random over the grid yet identical
    // across --jobs values and reruns of the same experiment.
    std::vector<char> crossChecked(rows * cols, 0);
    if (crossCheckCells > 0 && reference) {
        std::vector<std::size_t> candidates;
        for (std::size_t idx = 0; idx < rows * cols; ++idx) {
            if (!grid.done[idx].load(std::memory_order_relaxed))
                candidates.push_back(idx);
        }
        std::sort(candidates.begin(), candidates.end(),
                  [&grid](std::size_t a, std::size_t b) {
                      return grid.keys[a] < grid.keys[b];
                  });
        const std::size_t sample = std::min(
            candidates.size(),
            static_cast<std::size_t>(crossCheckCells));
        for (std::size_t i = 0; i < sample; ++i)
            crossChecked[candidates[i]] = 1;
    }

    std::vector<SimJob> batch;
    batch.reserve(rows * cols - resumed);
    for (std::size_t row = 0; row < rows; ++row) {
        for (std::size_t col = 0; col < cols; ++col) {
            const std::size_t idx = row * cols + col;
            if (grid.done[idx].load(std::memory_order_relaxed))
                continue;
            batch.push_back(
                {"cell[" + std::to_string(row) + "][" +
                     std::to_string(col) + "]",
                 [this, &cells, &cell, &reference, &grid, &crossChecked,
                  idx, row, col] {
                     const double value = cell(row, col);
                     cells[row][col] = value;
                     grid.done[idx].store(true,
                                          std::memory_order_release);
                     if (!crossChecked[idx])
                         return;
                     // Differential check: re-simulate on the naive
                     // reference model. Divergence means one of the two
                     // models is wrong — poison the cell and fail the
                     // job as an internal error rather than publish a
                     // number we cannot trust.
                     const double ref = reference(row, col);
                     const bool both_nan =
                         std::isnan(value) && std::isnan(ref);
                     const double tolerance =
                         1e-9 *
                         std::max(std::abs(value), std::abs(ref));
                     if (both_nan ||
                         std::abs(value - ref) <= tolerance) {
                         ++crossCheckedCellCount;
                         return;
                     }
                     cells[row][col] =
                         std::numeric_limits<double>::quiet_NaN();
                     grid.done[idx].store(false,
                                          std::memory_order_release);
                     invariantFailed(
                         "cross-check",
                         "cell[" + std::to_string(row) + "][" +
                             std::to_string(col) +
                             "] diverges from the reference model: "
                             "primary " +
                             std::to_string(value) + " vs reference " +
                             std::to_string(ref));
                 }});
        }
    }
    activeGrid = &grid;
    run(std::move(batch));
    activeGrid = nullptr;
    return cells;
}

void
SimRunner::flushCheckpoint() const
{
    // Deliberately bypasses the fault injector: the checkpoint is the
    // recovery mechanism itself, and injected faults are meant for the
    // pipeline under test, not for the lifeboat.
    const std::string temp =
        checkpointPath + ".tmp." + std::to_string(::getpid());
    std::FILE *file = std::fopen(temp.c_str(), "w");
    if (!file) {
        warn("cannot write checkpoint " + checkpointPath + ": " +
             std::strerror(errno));
        return;
    }
    std::fprintf(file, "%s\n", checkpointMagic);
    const GridState &grid = *activeGrid;
    for (std::size_t idx = 0; idx < grid.rows * grid.cols; ++idx) {
        if (!grid.done[idx].load(std::memory_order_acquire))
            continue;
        const double value =
            (*grid.cells)[idx / grid.cols][idx % grid.cols];
        std::fprintf(file, "%016llx %016llx\n",
                     static_cast<unsigned long long>(grid.keys[idx]),
                     static_cast<unsigned long long>(
                         doubleToBits(value)));
    }
    const bool write_ok = std::fflush(file) == 0 && !std::ferror(file);
    std::fclose(file);
    if (!write_ok || std::rename(temp.c_str(), checkpointPath.c_str())) {
        std::remove(temp.c_str());
        warn("cannot publish checkpoint " + checkpointPath + ": " +
             std::strerror(errno));
    }
}

void
SimRunner::exitOnSignal(int signal_number)
{
    if (activeGrid != nullptr && !checkpointPath.empty()) {
        std::size_t done_cells = 0;
        const std::size_t total =
            activeGrid->rows * activeGrid->cols;
        for (std::size_t idx = 0; idx < total; ++idx)
            done_cells += activeGrid->done[idx].load() ? 1 : 0;
        flushCheckpoint();
        std::fprintf(stderr,
                     "sim: interrupted by signal %d; %zu of %zu cells "
                     "checkpointed to %s (rerun with --resume 1)\n",
                     signal_number, done_cells, total,
                     checkpointPath.c_str());
    } else {
        std::fprintf(stderr,
                     "sim: interrupted by signal %d; no --checkpoint "
                     "file configured, progress discarded\n",
                     signal_number);
    }
    std::exit(128 + signal_number);
}

TraceHandle
SimRunner::captureTrace(const std::string &name, std::uint64_t insts,
                        std::uint64_t skip,
                        const WorkloadParams &params)
{
    fatalIf(insts == 0, "--insts must be positive");
    const TraceCacheKey key{name, insts, skip, params.scale,
                            params.seed, captureFormatVersion};
    const bool use_cache = cache && !cacheDegraded.load();
    if (use_cache) {
        std::vector<TraceRecord> records;
        Status error = Status::ok();
        if (cache->tryLoad(key, &records, &error)) {
            return std::make_shared<const std::vector<TraceRecord>>(
                std::move(records));
        }
        if (!error.isOk())
            warn(error.message() + "; recapturing");
    }

    const auto start = std::chrono::steady_clock::now();
    std::vector<TraceRecord> trace;
    bool have_trace = false;
    if (use_cache && captureFormatVersion >= traceFormatVersionV3) {
        // Stream the capture straight into the cache entry in bounded
        // chunks, so insts + skip records never materialize in this
        // process, then map the published entry back in. Warm-up
        // handling matches sliceTrace(): the first `skip` records are
        // dropped and kept records renumber from seq 0, so the entry
        // is byte-identical to one written by the materializing path.
        std::uint64_t seen = 0;
        std::vector<TraceRecord> kept;
        const Status streamed = cache->storeStreaming(
            key,
            [&](const std::function<Status(
                    const std::vector<TraceRecord> &)> &append) {
                seen = 0;
                return captureWorkloadTraceChunked(
                    name, insts + skip, params, defaultRecordsPerBlock,
                    [&](const std::vector<TraceRecord> &chunk) {
                        const std::uint64_t first = seen;
                        seen += chunk.size();
                        if (seen <= skip)
                            return Status::ok();
                        const auto cut = static_cast<std::size_t>(
                            skip > first ? skip - first : 0);
                        kept.assign(chunk.begin() +
                                        static_cast<std::ptrdiff_t>(cut),
                                    chunk.end());
                        for (TraceRecord &rec : kept)
                            rec.seq -= skip;
                        return append(kept);
                    });
            });
        if (streamed.isOk()) {
            // Read the entry back directly (not tryLoad: this is our
            // own just-published file, not a cache lookup, so it must
            // not perturb the hit/miss counters or quarantine logic).
            const Status read = readTraceV3(cache->pathFor(key), &trace);
            if (read.isOk()) {
                have_trace = true;
            } else {
                warn("cannot read back streamed trace capture: " +
                     read.message() + "; recapturing in memory");
            }
        } else if (!cacheDegraded.exchange(true)) {
            warn("trace cache degraded to in-memory capture: " +
                 streamed.message());
        }
    }

    if (!have_trace) {
        trace = captureWorkloadTrace(name, insts + skip, params);
        if (skip > 0)
            trace = sliceTrace(trace, skip);
        if (use_cache && !cacheDegraded.load()) {
            const Status stored = cache->store(key, trace);
            // A store that still fails after the cache's own retries is
            // treated as persistent (disk full, dir deleted): degrade
            // to in-memory capture once, with one warning, instead of
            // paying the retry cost and a warning per capture.
            if (!stored.isOk() && !cacheDegraded.exchange(true)) {
                warn("trace cache degraded to in-memory capture: " +
                     stored.message());
            }
        }
    }
    captureMicros += microsSince(start);
    ++capturesRun;

    // --mem-budget soft guard: materialized captures are the main RSS
    // driver in a bench process, so crossing the budget here gets one
    // actionable warning pointing at the streaming alternative instead
    // of a later OOM kill with no context.
    if (memBudget != 0 &&
        RssSampler::currentRssBytes() > memBudget &&
        !memBudgetWarned.exchange(true)) {
        warn("process RSS exceeds --mem-budget " +
             std::to_string(memBudget >> 20) +
             " MB after capturing '" + name +
             "'; consider fewer --benchmarks, smaller --insts, or the "
             "streaming v3 trace path");
    }
    return std::make_shared<const std::vector<TraceRecord>>(
        std::move(trace));
}

StreamingOptions
SimRunner::streamingOptions() const
{
    StreamingOptions streaming;
    streaming.salvage = salvageBlocksEnabled;
    streaming.memBudgetBytes = memBudget;
    return streaming;
}

BenchmarkTraces
SimRunner::captureBenchmarks()
{
    const std::uint64_t insts =
        static_cast<std::uint64_t>(options.getInt("insts"));
    std::vector<std::string> names = options.getList("benchmarks");
    if (names.empty())
        names = workloadNames();
    validateBenchmarkNames(names);

    WorkloadParams params;
    params.scale = static_cast<unsigned>(options.getInt("scale"));
    params.seed = static_cast<std::uint64_t>(options.getInt("seed"));
    const auto skip =
        static_cast<std::uint64_t>(options.getInt("skip"));

    BenchmarkTraces result;
    result.names = names;
    result.traces.resize(names.size());
    std::vector<SimJob> batch;
    batch.reserve(names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        batch.push_back(
            {"capture:" + names[i], [this, &result, &names, i, insts,
                                     skip, params] {
                 result.traces[i] =
                     captureTrace(names[i], insts, skip, params);
             }});
    }
    run(std::move(batch));
    return result;
}

void
SimRunner::reportStats() const
{
    std::fprintf(stderr,
                 "sim: %llu jobs on %u threads, wall %.0f ms, "
                 "job cpu %.0f ms (%llu VM captures, %.0f ms)\n",
                 static_cast<unsigned long long>(jobsRun.load()),
                 pool.threadCount(),
                 static_cast<double>(wallMicros.load()) / 1000.0,
                 static_cast<double>(jobMicros.load()) / 1000.0,
                 static_cast<unsigned long long>(capturesRun.load()),
                 static_cast<double>(captureMicros.load()) / 1000.0);
    if (cache) {
        std::fprintf(
            stderr, "trace cache: %llu hits, %llu misses (%s)\n",
            static_cast<unsigned long long>(cache->hits()),
            static_cast<unsigned long long>(cache->misses()),
            cache->directory().c_str());
        if (cache->gcRemovedQuarantineFiles() > 0) {
            std::fprintf(stderr,
                         "trace cache: garbage-collected %llu expired "
                         "quarantine file(s)\n",
                         static_cast<unsigned long long>(
                             cache->gcRemovedQuarantineFiles()));
        }
    }
    const SalvageRegistry::Totals salvage = salvageRegistry().totals();
    if (salvage.files > 0) {
        std::fprintf(
            stderr,
            "sim: salvage (--salvage-blocks): %llu damaged trace "
            "file(s), %llu block(s) quarantined, %llu record(s) lost, "
            "%llu byte(s) skipped\n",
            static_cast<unsigned long long>(salvage.files),
            static_cast<unsigned long long>(salvage.blocksQuarantined),
            static_cast<unsigned long long>(salvage.recordsLost),
            static_cast<unsigned long long>(salvage.bytesSkipped));
    }
    if (resumedCellCount > 0) {
        std::fprintf(stderr,
                     "sim: %llu cells served from checkpoint %s\n",
                     static_cast<unsigned long long>(resumedCellCount),
                     checkpointPath.c_str());
    }
    if (crossCheckedCellCount.load() > 0) {
        std::fprintf(stderr,
                     "sim: %llu cells cross-checked against the "
                     "reference model (all agree)\n",
                     static_cast<unsigned long long>(
                         crossCheckedCellCount.load()));
    }
    if (timedOutJobCount.load() > 0) {
        std::fprintf(stderr,
                     "sim: %llu job(s) canceled by the --job-timeout "
                     "watchdog\n",
                     static_cast<unsigned long long>(
                         timedOutJobCount.load()));
    }
    if (invariantViolations() > 0) {
        std::fprintf(stderr,
                     "sim: %llu invariant violation(s) detected (%llu "
                     "checks evaluated)\n",
                     static_cast<unsigned long long>(
                         invariantViolations()),
                     static_cast<unsigned long long>(
                         invariantChecksEvaluated()));
    }
    // Snapshot under the failures lock: reportStats() may be called
    // while another thread's batch is still recording (and the old
    // unlocked read here is exactly the kind of bug the thread-safety
    // analysis now rejects at compile time).
    const std::vector<JobFailure> failure_report = failures();
    if (!failure_report.empty()) {
        std::fprintf(stderr,
                     "sim: %zu job(s) FAILED under --keep-going "
                     "(cells recorded as NaN):\n",
                     failure_report.size());
        for (const JobFailure &failure : failure_report) {
            std::fprintf(stderr, "  %s: %s\n", failure.label.c_str(),
                         failure.error.c_str());
        }
    }
    if (!options.getBool("stats"))
        return;

    // Publish through the stats registry for uniform tooling.
    Counter jobs_counter, job_micros, wall, captures, capture_time;
    Counter cache_hits, cache_lookups, failed_jobs, resumed;
    jobs_counter += jobsRun.load();
    job_micros += jobMicros.load();
    wall += wallMicros.load();
    captures += capturesRun.load();
    capture_time += captureMicros.load();
    StatGroup group("sim_runner");
    group.addCounter("jobs", jobs_counter, "simulation jobs executed");
    group.addCounter("job_micros", job_micros,
                     "summed per-job wall clock (us)");
    group.addCounter("wall_micros", wall,
                     "end-to-end batch wall clock (us)");
    group.addCounter("vm_captures", captures,
                     "workload traces captured by the VM");
    group.addCounter("vm_capture_micros", capture_time,
                     "wall clock spent capturing traces (us)");
    failed_jobs += failure_report.size();
    group.addCounter("failed_jobs", failed_jobs,
                     "jobs that threw under --keep-going");
    resumed += resumedCellCount;
    group.addCounter("resumed_cells", resumed,
                     "grid cells reloaded from the checkpoint");
    Counter cross_checked, timed_out, invariant_checks;
    cross_checked += crossCheckedCellCount.load();
    group.addCounter("cross_checked_cells", cross_checked,
                     "cells re-simulated on the reference model");
    timed_out += timedOutJobCount.load();
    group.addCounter("timed_out_jobs", timed_out,
                     "jobs canceled by the --job-timeout watchdog");
    invariant_checks += invariantChecksEvaluated();
    group.addCounter("invariant_checks", invariant_checks,
                     "self-check invariants evaluated");
    if (cache) {
        cache_hits += cache->hits();
        cache_lookups += cache->hits() + cache->misses();
        group.addCounter("trace_cache_hits", cache_hits,
                         "captures served from the on-disk cache");
        group.addRatio("trace_cache_hit_rate", cache_hits,
                       cache_lookups, "hits / lookups");
    }
    Counter salvaged_blocks, salvaged_records_lost;
    salvaged_blocks += salvage.blocksQuarantined;
    group.addCounter("salvaged_blocks", salvaged_blocks,
                     "corrupt v3 blocks quarantined by salvage");
    salvaged_records_lost += salvage.recordsLost;
    group.addCounter("salvaged_records_lost", salvaged_records_lost,
                     "trace records lost to quarantined blocks");
    std::fputs(group.dump().c_str(), stderr);
}

} // namespace vpsim
