#include "sim/run_manifest.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/crc32.hpp"
#include "common/logging.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_v3.hpp"

#ifndef VPSIM_GIT_DESCRIBE
#define VPSIM_GIT_DESCRIBE "unknown"
#endif

namespace vpsim
{

namespace
{

constexpr char manifestSchema[] = "vpsim-run-manifest 2";

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char ch : text) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", ch);
                out += buffer;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

std::string
hex32(std::uint32_t value)
{
    char buffer[16];
    std::snprintf(buffer, sizeof(buffer), "%08x", value);
    return buffer;
}

} // namespace

std::string
buildGitDescribe()
{
    return VPSIM_GIT_DESCRIBE;
}

void
writeRunManifest(const Options &options, const std::string &csv_path)
{
    // Checksum the CSV exactly as it sits on disk (the bench may have
    // appended to a file older runs started).
    std::ifstream csv(csv_path, std::ios::binary);
    fatalIf(!csv, "cannot read back CSV " + csv_path +
                      " for its manifest");
    std::vector<char> bytes{std::istreambuf_iterator<char>(csv),
                            std::istreambuf_iterator<char>()};
    fatalIf(csv.bad(), "error reading CSV " + csv_path);
    const std::uint32_t csv_crc =
        crc32(bytes.data(), bytes.size());

    const std::string fingerprint = options.fingerprint();
    const std::string invariants =
        options.getString("check-invariants");
    const std::string cross_check = options.getString("cross-check");
    const std::string job_timeout = options.getString("job-timeout");
    const std::int64_t trace_format = options.getInt("trace-format");
    const std::string salvage_mode =
        options.getBool("salvage-blocks") ? "1" : "0";
    // The signed salvage tally is what makes block-level loss
    // auditable: a figure produced from a damaged trace carries the
    // damage in its provenance instead of passing as clean.
    const SalvageRegistry::Totals salvage = salvageRegistry().totals();

    // Canonical signing string: fixed field order, one key=value per
    // line. scripts/verify_manifest.py rebuilds this byte-for-byte
    // from the parsed JSON, so the two must never diverge.
    std::ostringstream signing;
    signing << "vpsim-manifest-signing-v2\n"
            << "schema=" << manifestSchema << '\n'
            << "gitDescribe=" << buildGitDescribe() << '\n'
            << "traceFormatVersion=" << trace_format << '\n'
            << "checkInvariants=" << invariants << '\n'
            << "crossCheck=" << cross_check << '\n'
            << "jobTimeout=" << job_timeout << '\n'
            << "salvageBlocks=" << salvage_mode << '\n'
            << "salvagedFiles=" << salvage.files << '\n'
            << "salvagedBlocks=" << salvage.blocksQuarantined << '\n'
            << "salvagedRecordsLost=" << salvage.recordsLost << '\n'
            << "fingerprint=" << fingerprint << '\n'
            << "csvFile=" << csv_path << '\n'
            << "csvBytes=" << bytes.size() << '\n'
            << "csvCrc32=" << hex32(csv_crc) << '\n';
    const std::string signed_body = signing.str();
    const std::uint32_t signature =
        crc32(signed_body.data(), signed_body.size());

    const std::string manifest_path = csv_path + ".manifest.json";
    std::ofstream out(manifest_path, std::ios::trunc);
    fatalIf(!out, "cannot write manifest " + manifest_path);
    out << "{\n"
        << "  \"schema\": \"" << jsonEscape(manifestSchema) << "\",\n"
        << "  \"gitDescribe\": \"" << jsonEscape(buildGitDescribe())
        << "\",\n"
        << "  \"traceFormatVersion\": " << trace_format << ",\n"
        << "  \"checkInvariants\": \"" << jsonEscape(invariants)
        << "\",\n"
        << "  \"crossCheck\": \"" << jsonEscape(cross_check) << "\",\n"
        << "  \"jobTimeout\": \"" << jsonEscape(job_timeout) << "\",\n"
        << "  \"salvageBlocks\": \"" << jsonEscape(salvage_mode)
        << "\",\n"
        << "  \"salvagedFiles\": " << salvage.files << ",\n"
        << "  \"salvagedBlocks\": " << salvage.blocksQuarantined
        << ",\n"
        << "  \"salvagedRecordsLost\": " << salvage.recordsLost
        << ",\n"
        << "  \"fingerprint\": \"" << jsonEscape(fingerprint) << "\",\n"
        << "  \"csvFile\": \"" << jsonEscape(csv_path) << "\",\n"
        << "  \"csvBytes\": " << bytes.size() << ",\n"
        << "  \"csvCrc32\": \"" << hex32(csv_crc) << "\",\n"
        << "  \"signature\": \"crc32:" << hex32(signature) << "\"\n"
        << "}\n";
    out.flush();
    fatalIf(!out, "error writing manifest " + manifest_path);
}

} // namespace vpsim
