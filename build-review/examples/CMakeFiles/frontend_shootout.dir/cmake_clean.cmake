file(REMOVE_RECURSE
  "CMakeFiles/frontend_shootout.dir/frontend_shootout.cpp.o"
  "CMakeFiles/frontend_shootout.dir/frontend_shootout.cpp.o.d"
  "frontend_shootout"
  "frontend_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
