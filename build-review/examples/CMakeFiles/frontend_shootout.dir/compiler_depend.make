# Empty compiler generated dependencies file for frontend_shootout.
# This may be replaced when dependencies are built.
