file(REMOVE_RECURSE
  "CMakeFiles/did_explorer.dir/did_explorer.cpp.o"
  "CMakeFiles/did_explorer.dir/did_explorer.cpp.o.d"
  "did_explorer"
  "did_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/did_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
