# Empty compiler generated dependencies file for did_explorer.
# This may be replaced when dependencies are built.
