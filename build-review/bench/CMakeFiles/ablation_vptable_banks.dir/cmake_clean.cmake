file(REMOVE_RECURSE
  "CMakeFiles/ablation_vptable_banks.dir/ablation_vptable_banks.cpp.o"
  "CMakeFiles/ablation_vptable_banks.dir/ablation_vptable_banks.cpp.o.d"
  "ablation_vptable_banks"
  "ablation_vptable_banks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vptable_banks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
