# Empty dependencies file for fig5_2_taken_branches_2level_btb.
# This may be replaced when dependencies are built.
