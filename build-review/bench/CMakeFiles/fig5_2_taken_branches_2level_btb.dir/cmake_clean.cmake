file(REMOVE_RECURSE
  "CMakeFiles/fig5_2_taken_branches_2level_btb.dir/fig5_2_taken_branches_2level_btb.cpp.o"
  "CMakeFiles/fig5_2_taken_branches_2level_btb.dir/fig5_2_taken_branches_2level_btb.cpp.o.d"
  "fig5_2_taken_branches_2level_btb"
  "fig5_2_taken_branches_2level_btb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_2_taken_branches_2level_btb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
