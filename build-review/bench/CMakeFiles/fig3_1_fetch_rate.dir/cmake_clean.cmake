file(REMOVE_RECURSE
  "CMakeFiles/fig3_1_fetch_rate.dir/fig3_1_fetch_rate.cpp.o"
  "CMakeFiles/fig3_1_fetch_rate.dir/fig3_1_fetch_rate.cpp.o.d"
  "fig3_1_fetch_rate"
  "fig3_1_fetch_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_1_fetch_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
