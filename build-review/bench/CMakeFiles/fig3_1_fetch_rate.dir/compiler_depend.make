# Empty compiler generated dependencies file for fig3_1_fetch_rate.
# This may be replaced when dependencies are built.
