file(REMOVE_RECURSE
  "CMakeFiles/fig3_3_avg_did.dir/fig3_3_avg_did.cpp.o"
  "CMakeFiles/fig3_3_avg_did.dir/fig3_3_avg_did.cpp.o.d"
  "fig3_3_avg_did"
  "fig3_3_avg_did.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_3_avg_did.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
