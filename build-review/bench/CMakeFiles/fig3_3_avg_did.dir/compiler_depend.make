# Empty compiler generated dependencies file for fig3_3_avg_did.
# This may be replaced when dependencies are built.
