# Empty compiler generated dependencies file for ablation_classifier.
# This may be replaced when dependencies are built.
