file(REMOVE_RECURSE
  "CMakeFiles/ablation_classifier.dir/ablation_classifier.cpp.o"
  "CMakeFiles/ablation_classifier.dir/ablation_classifier.cpp.o.d"
  "ablation_classifier"
  "ablation_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
