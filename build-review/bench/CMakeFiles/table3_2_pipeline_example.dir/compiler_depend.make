# Empty compiler generated dependencies file for table3_2_pipeline_example.
# This may be replaced when dependencies are built.
