file(REMOVE_RECURSE
  "CMakeFiles/table3_2_pipeline_example.dir/table3_2_pipeline_example.cpp.o"
  "CMakeFiles/table3_2_pipeline_example.dir/table3_2_pipeline_example.cpp.o.d"
  "table3_2_pipeline_example"
  "table3_2_pipeline_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_2_pipeline_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
