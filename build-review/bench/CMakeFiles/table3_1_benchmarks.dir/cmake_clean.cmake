file(REMOVE_RECURSE
  "CMakeFiles/table3_1_benchmarks.dir/table3_1_benchmarks.cpp.o"
  "CMakeFiles/table3_1_benchmarks.dir/table3_1_benchmarks.cpp.o.d"
  "table3_1_benchmarks"
  "table3_1_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_1_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
