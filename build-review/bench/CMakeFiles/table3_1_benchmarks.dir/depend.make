# Empty dependencies file for table3_1_benchmarks.
# This may be replaced when dependencies are built.
