# Empty compiler generated dependencies file for ablation_table_size.
# This may be replaced when dependencies are built.
