file(REMOVE_RECURSE
  "CMakeFiles/ablation_table_size.dir/ablation_table_size.cpp.o"
  "CMakeFiles/ablation_table_size.dir/ablation_table_size.cpp.o.d"
  "ablation_table_size"
  "ablation_table_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_table_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
