# Empty dependencies file for microbench_components.
# This may be replaced when dependencies are built.
