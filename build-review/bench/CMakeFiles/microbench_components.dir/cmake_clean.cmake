file(REMOVE_RECURSE
  "CMakeFiles/microbench_components.dir/microbench_components.cpp.o"
  "CMakeFiles/microbench_components.dir/microbench_components.cpp.o.d"
  "microbench_components"
  "microbench_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
