file(REMOVE_RECURSE
  "CMakeFiles/ablation_profile_hints.dir/ablation_profile_hints.cpp.o"
  "CMakeFiles/ablation_profile_hints.dir/ablation_profile_hints.cpp.o.d"
  "ablation_profile_hints"
  "ablation_profile_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_profile_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
