# Empty compiler generated dependencies file for ablation_profile_hints.
# This may be replaced when dependencies are built.
