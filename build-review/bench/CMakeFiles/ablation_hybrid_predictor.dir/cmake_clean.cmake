file(REMOVE_RECURSE
  "CMakeFiles/ablation_hybrid_predictor.dir/ablation_hybrid_predictor.cpp.o"
  "CMakeFiles/ablation_hybrid_predictor.dir/ablation_hybrid_predictor.cpp.o.d"
  "ablation_hybrid_predictor"
  "ablation_hybrid_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hybrid_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
