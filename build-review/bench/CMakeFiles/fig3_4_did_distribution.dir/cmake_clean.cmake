file(REMOVE_RECURSE
  "CMakeFiles/fig3_4_did_distribution.dir/fig3_4_did_distribution.cpp.o"
  "CMakeFiles/fig3_4_did_distribution.dir/fig3_4_did_distribution.cpp.o.d"
  "fig3_4_did_distribution"
  "fig3_4_did_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_4_did_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
