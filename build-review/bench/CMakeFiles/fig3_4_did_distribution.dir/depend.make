# Empty dependencies file for fig3_4_did_distribution.
# This may be replaced when dependencies are built.
