file(REMOVE_RECURSE
  "CMakeFiles/ablation_vp_scope.dir/ablation_vp_scope.cpp.o"
  "CMakeFiles/ablation_vp_scope.dir/ablation_vp_scope.cpp.o.d"
  "ablation_vp_scope"
  "ablation_vp_scope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vp_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
