# Empty dependencies file for ablation_vp_scope.
# This may be replaced when dependencies are built.
