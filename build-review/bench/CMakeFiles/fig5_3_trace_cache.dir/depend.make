# Empty dependencies file for fig5_3_trace_cache.
# This may be replaced when dependencies are built.
