file(REMOVE_RECURSE
  "CMakeFiles/fig5_3_trace_cache.dir/fig5_3_trace_cache.cpp.o"
  "CMakeFiles/fig5_3_trace_cache.dir/fig5_3_trace_cache.cpp.o.d"
  "fig5_3_trace_cache"
  "fig5_3_trace_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_3_trace_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
