file(REMOVE_RECURSE
  "CMakeFiles/ablation_wrong_path.dir/ablation_wrong_path.cpp.o"
  "CMakeFiles/ablation_wrong_path.dir/ablation_wrong_path.cpp.o.d"
  "ablation_wrong_path"
  "ablation_wrong_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wrong_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
