# Empty compiler generated dependencies file for ablation_wrong_path.
# This may be replaced when dependencies are built.
