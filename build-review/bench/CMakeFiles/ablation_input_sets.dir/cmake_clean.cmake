file(REMOVE_RECURSE
  "CMakeFiles/ablation_input_sets.dir/ablation_input_sets.cpp.o"
  "CMakeFiles/ablation_input_sets.dir/ablation_input_sets.cpp.o.d"
  "ablation_input_sets"
  "ablation_input_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_input_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
