# Empty compiler generated dependencies file for ablation_input_sets.
# This may be replaced when dependencies are built.
