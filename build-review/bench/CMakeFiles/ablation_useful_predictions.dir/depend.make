# Empty dependencies file for ablation_useful_predictions.
# This may be replaced when dependencies are built.
