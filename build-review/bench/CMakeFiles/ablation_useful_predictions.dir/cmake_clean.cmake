file(REMOVE_RECURSE
  "CMakeFiles/ablation_useful_predictions.dir/ablation_useful_predictions.cpp.o"
  "CMakeFiles/ablation_useful_predictions.dir/ablation_useful_predictions.cpp.o.d"
  "ablation_useful_predictions"
  "ablation_useful_predictions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_useful_predictions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
