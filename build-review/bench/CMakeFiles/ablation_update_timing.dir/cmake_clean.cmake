file(REMOVE_RECURSE
  "CMakeFiles/ablation_update_timing.dir/ablation_update_timing.cpp.o"
  "CMakeFiles/ablation_update_timing.dir/ablation_update_timing.cpp.o.d"
  "ablation_update_timing"
  "ablation_update_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_update_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
