# Empty dependencies file for ablation_update_timing.
# This may be replaced when dependencies are built.
