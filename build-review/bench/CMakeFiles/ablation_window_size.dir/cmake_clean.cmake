file(REMOVE_RECURSE
  "CMakeFiles/ablation_window_size.dir/ablation_window_size.cpp.o"
  "CMakeFiles/ablation_window_size.dir/ablation_window_size.cpp.o.d"
  "ablation_window_size"
  "ablation_window_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_window_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
