file(REMOVE_RECURSE
  "CMakeFiles/fig3_5_predictability.dir/fig3_5_predictability.cpp.o"
  "CMakeFiles/fig3_5_predictability.dir/fig3_5_predictability.cpp.o.d"
  "fig3_5_predictability"
  "fig3_5_predictability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_5_predictability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
