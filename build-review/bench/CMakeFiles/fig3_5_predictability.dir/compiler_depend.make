# Empty compiler generated dependencies file for fig3_5_predictability.
# This may be replaced when dependencies are built.
