file(REMOVE_RECURSE
  "CMakeFiles/ablation_vp_penalty.dir/ablation_vp_penalty.cpp.o"
  "CMakeFiles/ablation_vp_penalty.dir/ablation_vp_penalty.cpp.o.d"
  "ablation_vp_penalty"
  "ablation_vp_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vp_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
