# Empty dependencies file for ablation_vp_penalty.
# This may be replaced when dependencies are built.
