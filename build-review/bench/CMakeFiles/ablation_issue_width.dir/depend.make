# Empty dependencies file for ablation_issue_width.
# This may be replaced when dependencies are built.
