file(REMOVE_RECURSE
  "CMakeFiles/ablation_issue_width.dir/ablation_issue_width.cpp.o"
  "CMakeFiles/ablation_issue_width.dir/ablation_issue_width.cpp.o.d"
  "ablation_issue_width"
  "ablation_issue_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_issue_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
