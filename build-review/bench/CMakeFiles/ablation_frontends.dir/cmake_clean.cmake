file(REMOVE_RECURSE
  "CMakeFiles/ablation_frontends.dir/ablation_frontends.cpp.o"
  "CMakeFiles/ablation_frontends.dir/ablation_frontends.cpp.o.d"
  "ablation_frontends"
  "ablation_frontends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_frontends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
