# Empty compiler generated dependencies file for ablation_frontends.
# This may be replaced when dependencies are built.
