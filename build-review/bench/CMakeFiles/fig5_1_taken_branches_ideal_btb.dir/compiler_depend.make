# Empty compiler generated dependencies file for fig5_1_taken_branches_ideal_btb.
# This may be replaced when dependencies are built.
