file(REMOVE_RECURSE
  "CMakeFiles/fig5_1_taken_branches_ideal_btb.dir/fig5_1_taken_branches_ideal_btb.cpp.o"
  "CMakeFiles/fig5_1_taken_branches_ideal_btb.dir/fig5_1_taken_branches_ideal_btb.cpp.o.d"
  "fig5_1_taken_branches_ideal_btb"
  "fig5_1_taken_branches_ideal_btb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_1_taken_branches_ideal_btb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
