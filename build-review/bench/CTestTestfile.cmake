# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-review/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke "/usr/bin/cmake" "-E" "env" "/root/repo/bench/../scripts/smoke_bench.sh" "/root/repo/build-review")
set_tests_properties(bench_smoke PROPERTIES  LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;45;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(fault_soak "/usr/bin/cmake" "-E" "env" "/root/repo/bench/../scripts/fault_soak.sh" "/root/repo/build-review")
set_tests_properties(fault_soak PROPERTIES  LABELS "smoke" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;54;add_test;/root/repo/bench/CMakeLists.txt;0;")
