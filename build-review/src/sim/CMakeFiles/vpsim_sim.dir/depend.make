# Empty dependencies file for vpsim_sim.
# This may be replaced when dependencies are built.
