file(REMOVE_RECURSE
  "CMakeFiles/vpsim_sim.dir/experiment.cpp.o"
  "CMakeFiles/vpsim_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/vpsim_sim.dir/run_manifest.cpp.o"
  "CMakeFiles/vpsim_sim.dir/run_manifest.cpp.o.d"
  "CMakeFiles/vpsim_sim.dir/sim_runner.cpp.o"
  "CMakeFiles/vpsim_sim.dir/sim_runner.cpp.o.d"
  "libvpsim_sim.a"
  "libvpsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
