file(REMOVE_RECURSE
  "libvpsim_sim.a"
)
