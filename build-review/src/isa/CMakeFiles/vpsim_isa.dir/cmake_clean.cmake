file(REMOVE_RECURSE
  "CMakeFiles/vpsim_isa.dir/instruction.cpp.o"
  "CMakeFiles/vpsim_isa.dir/instruction.cpp.o.d"
  "CMakeFiles/vpsim_isa.dir/opcodes.cpp.o"
  "CMakeFiles/vpsim_isa.dir/opcodes.cpp.o.d"
  "libvpsim_isa.a"
  "libvpsim_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpsim_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
