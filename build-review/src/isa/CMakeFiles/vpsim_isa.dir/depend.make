# Empty dependencies file for vpsim_isa.
# This may be replaced when dependencies are built.
