file(REMOVE_RECURSE
  "libvpsim_isa.a"
)
