# Empty dependencies file for vpsim_common.
# This may be replaced when dependencies are built.
