file(REMOVE_RECURSE
  "libvpsim_common.a"
)
