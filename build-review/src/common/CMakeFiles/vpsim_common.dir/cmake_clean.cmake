file(REMOVE_RECURSE
  "CMakeFiles/vpsim_common.dir/cancellation.cpp.o"
  "CMakeFiles/vpsim_common.dir/cancellation.cpp.o.d"
  "CMakeFiles/vpsim_common.dir/histogram.cpp.o"
  "CMakeFiles/vpsim_common.dir/histogram.cpp.o.d"
  "CMakeFiles/vpsim_common.dir/invariant.cpp.o"
  "CMakeFiles/vpsim_common.dir/invariant.cpp.o.d"
  "CMakeFiles/vpsim_common.dir/io.cpp.o"
  "CMakeFiles/vpsim_common.dir/io.cpp.o.d"
  "CMakeFiles/vpsim_common.dir/logging.cpp.o"
  "CMakeFiles/vpsim_common.dir/logging.cpp.o.d"
  "CMakeFiles/vpsim_common.dir/options.cpp.o"
  "CMakeFiles/vpsim_common.dir/options.cpp.o.d"
  "CMakeFiles/vpsim_common.dir/resource_usage.cpp.o"
  "CMakeFiles/vpsim_common.dir/resource_usage.cpp.o.d"
  "CMakeFiles/vpsim_common.dir/stats.cpp.o"
  "CMakeFiles/vpsim_common.dir/stats.cpp.o.d"
  "CMakeFiles/vpsim_common.dir/table_printer.cpp.o"
  "CMakeFiles/vpsim_common.dir/table_printer.cpp.o.d"
  "CMakeFiles/vpsim_common.dir/thread_pool.cpp.o"
  "CMakeFiles/vpsim_common.dir/thread_pool.cpp.o.d"
  "libvpsim_common.a"
  "libvpsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
