
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/cancellation.cpp" "src/common/CMakeFiles/vpsim_common.dir/cancellation.cpp.o" "gcc" "src/common/CMakeFiles/vpsim_common.dir/cancellation.cpp.o.d"
  "/root/repo/src/common/histogram.cpp" "src/common/CMakeFiles/vpsim_common.dir/histogram.cpp.o" "gcc" "src/common/CMakeFiles/vpsim_common.dir/histogram.cpp.o.d"
  "/root/repo/src/common/invariant.cpp" "src/common/CMakeFiles/vpsim_common.dir/invariant.cpp.o" "gcc" "src/common/CMakeFiles/vpsim_common.dir/invariant.cpp.o.d"
  "/root/repo/src/common/io.cpp" "src/common/CMakeFiles/vpsim_common.dir/io.cpp.o" "gcc" "src/common/CMakeFiles/vpsim_common.dir/io.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/common/CMakeFiles/vpsim_common.dir/logging.cpp.o" "gcc" "src/common/CMakeFiles/vpsim_common.dir/logging.cpp.o.d"
  "/root/repo/src/common/options.cpp" "src/common/CMakeFiles/vpsim_common.dir/options.cpp.o" "gcc" "src/common/CMakeFiles/vpsim_common.dir/options.cpp.o.d"
  "/root/repo/src/common/resource_usage.cpp" "src/common/CMakeFiles/vpsim_common.dir/resource_usage.cpp.o" "gcc" "src/common/CMakeFiles/vpsim_common.dir/resource_usage.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/common/CMakeFiles/vpsim_common.dir/stats.cpp.o" "gcc" "src/common/CMakeFiles/vpsim_common.dir/stats.cpp.o.d"
  "/root/repo/src/common/table_printer.cpp" "src/common/CMakeFiles/vpsim_common.dir/table_printer.cpp.o" "gcc" "src/common/CMakeFiles/vpsim_common.dir/table_printer.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/common/CMakeFiles/vpsim_common.dir/thread_pool.cpp.o" "gcc" "src/common/CMakeFiles/vpsim_common.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
