
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/source.cpp" "src/trace/CMakeFiles/vpsim_trace.dir/source.cpp.o" "gcc" "src/trace/CMakeFiles/vpsim_trace.dir/source.cpp.o.d"
  "/root/repo/src/trace/trace_cache_store.cpp" "src/trace/CMakeFiles/vpsim_trace.dir/trace_cache_store.cpp.o" "gcc" "src/trace/CMakeFiles/vpsim_trace.dir/trace_cache_store.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/vpsim_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/vpsim_trace.dir/trace_io.cpp.o.d"
  "/root/repo/src/trace/trace_stats.cpp" "src/trace/CMakeFiles/vpsim_trace.dir/trace_stats.cpp.o" "gcc" "src/trace/CMakeFiles/vpsim_trace.dir/trace_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/vpsim_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/isa/CMakeFiles/vpsim_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
