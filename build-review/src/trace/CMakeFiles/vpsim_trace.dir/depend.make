# Empty dependencies file for vpsim_trace.
# This may be replaced when dependencies are built.
