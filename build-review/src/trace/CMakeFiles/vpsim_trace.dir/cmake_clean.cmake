file(REMOVE_RECURSE
  "CMakeFiles/vpsim_trace.dir/source.cpp.o"
  "CMakeFiles/vpsim_trace.dir/source.cpp.o.d"
  "CMakeFiles/vpsim_trace.dir/trace_cache_store.cpp.o"
  "CMakeFiles/vpsim_trace.dir/trace_cache_store.cpp.o.d"
  "CMakeFiles/vpsim_trace.dir/trace_io.cpp.o"
  "CMakeFiles/vpsim_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/vpsim_trace.dir/trace_stats.cpp.o"
  "CMakeFiles/vpsim_trace.dir/trace_stats.cpp.o.d"
  "libvpsim_trace.a"
  "libvpsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
