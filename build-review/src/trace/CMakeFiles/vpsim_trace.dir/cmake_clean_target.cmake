file(REMOVE_RECURSE
  "libvpsim_trace.a"
)
