file(REMOVE_RECURSE
  "libvpsim_vm.a"
)
