# Empty dependencies file for vpsim_vm.
# This may be replaced when dependencies are built.
