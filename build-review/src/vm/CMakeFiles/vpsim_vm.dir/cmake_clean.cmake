file(REMOVE_RECURSE
  "CMakeFiles/vpsim_vm.dir/assembler.cpp.o"
  "CMakeFiles/vpsim_vm.dir/assembler.cpp.o.d"
  "CMakeFiles/vpsim_vm.dir/interpreter.cpp.o"
  "CMakeFiles/vpsim_vm.dir/interpreter.cpp.o.d"
  "CMakeFiles/vpsim_vm.dir/memory.cpp.o"
  "CMakeFiles/vpsim_vm.dir/memory.cpp.o.d"
  "CMakeFiles/vpsim_vm.dir/program.cpp.o"
  "CMakeFiles/vpsim_vm.dir/program.cpp.o.d"
  "CMakeFiles/vpsim_vm.dir/program_builder.cpp.o"
  "CMakeFiles/vpsim_vm.dir/program_builder.cpp.o.d"
  "libvpsim_vm.a"
  "libvpsim_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpsim_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
