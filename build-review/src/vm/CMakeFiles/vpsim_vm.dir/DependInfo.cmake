
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/assembler.cpp" "src/vm/CMakeFiles/vpsim_vm.dir/assembler.cpp.o" "gcc" "src/vm/CMakeFiles/vpsim_vm.dir/assembler.cpp.o.d"
  "/root/repo/src/vm/interpreter.cpp" "src/vm/CMakeFiles/vpsim_vm.dir/interpreter.cpp.o" "gcc" "src/vm/CMakeFiles/vpsim_vm.dir/interpreter.cpp.o.d"
  "/root/repo/src/vm/memory.cpp" "src/vm/CMakeFiles/vpsim_vm.dir/memory.cpp.o" "gcc" "src/vm/CMakeFiles/vpsim_vm.dir/memory.cpp.o.d"
  "/root/repo/src/vm/program.cpp" "src/vm/CMakeFiles/vpsim_vm.dir/program.cpp.o" "gcc" "src/vm/CMakeFiles/vpsim_vm.dir/program.cpp.o.d"
  "/root/repo/src/vm/program_builder.cpp" "src/vm/CMakeFiles/vpsim_vm.dir/program_builder.cpp.o" "gcc" "src/vm/CMakeFiles/vpsim_vm.dir/program_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/vpsim_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/isa/CMakeFiles/vpsim_isa.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/vpsim_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
