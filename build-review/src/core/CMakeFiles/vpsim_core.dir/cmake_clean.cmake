file(REMOVE_RECURSE
  "CMakeFiles/vpsim_core.dir/ideal_machine.cpp.o"
  "CMakeFiles/vpsim_core.dir/ideal_machine.cpp.o.d"
  "CMakeFiles/vpsim_core.dir/pipeline_machine.cpp.o"
  "CMakeFiles/vpsim_core.dir/pipeline_machine.cpp.o.d"
  "CMakeFiles/vpsim_core.dir/reference_machine.cpp.o"
  "CMakeFiles/vpsim_core.dir/reference_machine.cpp.o.d"
  "CMakeFiles/vpsim_core.dir/speedup.cpp.o"
  "CMakeFiles/vpsim_core.dir/speedup.cpp.o.d"
  "libvpsim_core.a"
  "libvpsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
