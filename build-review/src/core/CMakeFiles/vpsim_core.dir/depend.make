# Empty dependencies file for vpsim_core.
# This may be replaced when dependencies are built.
