file(REMOVE_RECURSE
  "libvpsim_core.a"
)
