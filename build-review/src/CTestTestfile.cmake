# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("isa")
subdirs("trace")
subdirs("vm")
subdirs("workloads")
subdirs("predictor")
subdirs("bpred")
subdirs("fetch")
subdirs("vptable")
subdirs("analysis")
subdirs("core")
subdirs("sim")
