# Empty compiler generated dependencies file for vpsim_workloads.
# This may be replaced when dependencies are built.
