file(REMOVE_RECURSE
  "libvpsim_workloads.a"
)
