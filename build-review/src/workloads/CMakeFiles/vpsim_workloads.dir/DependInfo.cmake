
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/compress.cpp" "src/workloads/CMakeFiles/vpsim_workloads.dir/compress.cpp.o" "gcc" "src/workloads/CMakeFiles/vpsim_workloads.dir/compress.cpp.o.d"
  "/root/repo/src/workloads/gcc.cpp" "src/workloads/CMakeFiles/vpsim_workloads.dir/gcc.cpp.o" "gcc" "src/workloads/CMakeFiles/vpsim_workloads.dir/gcc.cpp.o.d"
  "/root/repo/src/workloads/go.cpp" "src/workloads/CMakeFiles/vpsim_workloads.dir/go.cpp.o" "gcc" "src/workloads/CMakeFiles/vpsim_workloads.dir/go.cpp.o.d"
  "/root/repo/src/workloads/ijpeg.cpp" "src/workloads/CMakeFiles/vpsim_workloads.dir/ijpeg.cpp.o" "gcc" "src/workloads/CMakeFiles/vpsim_workloads.dir/ijpeg.cpp.o.d"
  "/root/repo/src/workloads/li.cpp" "src/workloads/CMakeFiles/vpsim_workloads.dir/li.cpp.o" "gcc" "src/workloads/CMakeFiles/vpsim_workloads.dir/li.cpp.o.d"
  "/root/repo/src/workloads/m88ksim.cpp" "src/workloads/CMakeFiles/vpsim_workloads.dir/m88ksim.cpp.o" "gcc" "src/workloads/CMakeFiles/vpsim_workloads.dir/m88ksim.cpp.o.d"
  "/root/repo/src/workloads/perl.cpp" "src/workloads/CMakeFiles/vpsim_workloads.dir/perl.cpp.o" "gcc" "src/workloads/CMakeFiles/vpsim_workloads.dir/perl.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/vpsim_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/vpsim_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/vortex.cpp" "src/workloads/CMakeFiles/vpsim_workloads.dir/vortex.cpp.o" "gcc" "src/workloads/CMakeFiles/vpsim_workloads.dir/vortex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/vpsim_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/vm/CMakeFiles/vpsim_vm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/vpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/isa/CMakeFiles/vpsim_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
