file(REMOVE_RECURSE
  "CMakeFiles/vpsim_workloads.dir/compress.cpp.o"
  "CMakeFiles/vpsim_workloads.dir/compress.cpp.o.d"
  "CMakeFiles/vpsim_workloads.dir/gcc.cpp.o"
  "CMakeFiles/vpsim_workloads.dir/gcc.cpp.o.d"
  "CMakeFiles/vpsim_workloads.dir/go.cpp.o"
  "CMakeFiles/vpsim_workloads.dir/go.cpp.o.d"
  "CMakeFiles/vpsim_workloads.dir/ijpeg.cpp.o"
  "CMakeFiles/vpsim_workloads.dir/ijpeg.cpp.o.d"
  "CMakeFiles/vpsim_workloads.dir/li.cpp.o"
  "CMakeFiles/vpsim_workloads.dir/li.cpp.o.d"
  "CMakeFiles/vpsim_workloads.dir/m88ksim.cpp.o"
  "CMakeFiles/vpsim_workloads.dir/m88ksim.cpp.o.d"
  "CMakeFiles/vpsim_workloads.dir/perl.cpp.o"
  "CMakeFiles/vpsim_workloads.dir/perl.cpp.o.d"
  "CMakeFiles/vpsim_workloads.dir/registry.cpp.o"
  "CMakeFiles/vpsim_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/vpsim_workloads.dir/vortex.cpp.o"
  "CMakeFiles/vpsim_workloads.dir/vortex.cpp.o.d"
  "libvpsim_workloads.a"
  "libvpsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
