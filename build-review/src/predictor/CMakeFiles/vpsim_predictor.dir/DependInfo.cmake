
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/predictor/classifier.cpp" "src/predictor/CMakeFiles/vpsim_predictor.dir/classifier.cpp.o" "gcc" "src/predictor/CMakeFiles/vpsim_predictor.dir/classifier.cpp.o.d"
  "/root/repo/src/predictor/factory.cpp" "src/predictor/CMakeFiles/vpsim_predictor.dir/factory.cpp.o" "gcc" "src/predictor/CMakeFiles/vpsim_predictor.dir/factory.cpp.o.d"
  "/root/repo/src/predictor/fcm.cpp" "src/predictor/CMakeFiles/vpsim_predictor.dir/fcm.cpp.o" "gcc" "src/predictor/CMakeFiles/vpsim_predictor.dir/fcm.cpp.o.d"
  "/root/repo/src/predictor/hybrid.cpp" "src/predictor/CMakeFiles/vpsim_predictor.dir/hybrid.cpp.o" "gcc" "src/predictor/CMakeFiles/vpsim_predictor.dir/hybrid.cpp.o.d"
  "/root/repo/src/predictor/last_value.cpp" "src/predictor/CMakeFiles/vpsim_predictor.dir/last_value.cpp.o" "gcc" "src/predictor/CMakeFiles/vpsim_predictor.dir/last_value.cpp.o.d"
  "/root/repo/src/predictor/profile.cpp" "src/predictor/CMakeFiles/vpsim_predictor.dir/profile.cpp.o" "gcc" "src/predictor/CMakeFiles/vpsim_predictor.dir/profile.cpp.o.d"
  "/root/repo/src/predictor/stride.cpp" "src/predictor/CMakeFiles/vpsim_predictor.dir/stride.cpp.o" "gcc" "src/predictor/CMakeFiles/vpsim_predictor.dir/stride.cpp.o.d"
  "/root/repo/src/predictor/two_delta.cpp" "src/predictor/CMakeFiles/vpsim_predictor.dir/two_delta.cpp.o" "gcc" "src/predictor/CMakeFiles/vpsim_predictor.dir/two_delta.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/vpsim_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/vpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/isa/CMakeFiles/vpsim_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
