file(REMOVE_RECURSE
  "CMakeFiles/vpsim_predictor.dir/classifier.cpp.o"
  "CMakeFiles/vpsim_predictor.dir/classifier.cpp.o.d"
  "CMakeFiles/vpsim_predictor.dir/factory.cpp.o"
  "CMakeFiles/vpsim_predictor.dir/factory.cpp.o.d"
  "CMakeFiles/vpsim_predictor.dir/fcm.cpp.o"
  "CMakeFiles/vpsim_predictor.dir/fcm.cpp.o.d"
  "CMakeFiles/vpsim_predictor.dir/hybrid.cpp.o"
  "CMakeFiles/vpsim_predictor.dir/hybrid.cpp.o.d"
  "CMakeFiles/vpsim_predictor.dir/last_value.cpp.o"
  "CMakeFiles/vpsim_predictor.dir/last_value.cpp.o.d"
  "CMakeFiles/vpsim_predictor.dir/profile.cpp.o"
  "CMakeFiles/vpsim_predictor.dir/profile.cpp.o.d"
  "CMakeFiles/vpsim_predictor.dir/stride.cpp.o"
  "CMakeFiles/vpsim_predictor.dir/stride.cpp.o.d"
  "CMakeFiles/vpsim_predictor.dir/two_delta.cpp.o"
  "CMakeFiles/vpsim_predictor.dir/two_delta.cpp.o.d"
  "libvpsim_predictor.a"
  "libvpsim_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpsim_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
