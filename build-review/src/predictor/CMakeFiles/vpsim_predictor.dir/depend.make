# Empty dependencies file for vpsim_predictor.
# This may be replaced when dependencies are built.
