file(REMOVE_RECURSE
  "libvpsim_predictor.a"
)
