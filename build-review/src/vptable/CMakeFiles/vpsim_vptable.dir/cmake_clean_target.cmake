file(REMOVE_RECURSE
  "libvpsim_vptable.a"
)
