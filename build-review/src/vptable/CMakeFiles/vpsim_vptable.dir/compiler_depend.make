# Empty compiler generated dependencies file for vpsim_vptable.
# This may be replaced when dependencies are built.
