file(REMOVE_RECURSE
  "CMakeFiles/vpsim_vptable.dir/interleaved_table.cpp.o"
  "CMakeFiles/vpsim_vptable.dir/interleaved_table.cpp.o.d"
  "libvpsim_vptable.a"
  "libvpsim_vptable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpsim_vptable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
