
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vptable/interleaved_table.cpp" "src/vptable/CMakeFiles/vpsim_vptable.dir/interleaved_table.cpp.o" "gcc" "src/vptable/CMakeFiles/vpsim_vptable.dir/interleaved_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/vpsim_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/predictor/CMakeFiles/vpsim_predictor.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/vpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/isa/CMakeFiles/vpsim_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
