file(REMOVE_RECURSE
  "libvpsim_analysis.a"
)
