# Empty dependencies file for vpsim_analysis.
# This may be replaced when dependencies are built.
