file(REMOVE_RECURSE
  "CMakeFiles/vpsim_analysis.dir/did.cpp.o"
  "CMakeFiles/vpsim_analysis.dir/did.cpp.o.d"
  "CMakeFiles/vpsim_analysis.dir/predictability.cpp.o"
  "CMakeFiles/vpsim_analysis.dir/predictability.cpp.o.d"
  "libvpsim_analysis.a"
  "libvpsim_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpsim_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
