
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fetch/branch_address_cache.cpp" "src/fetch/CMakeFiles/vpsim_fetch.dir/branch_address_cache.cpp.o" "gcc" "src/fetch/CMakeFiles/vpsim_fetch.dir/branch_address_cache.cpp.o.d"
  "/root/repo/src/fetch/collapsing_buffer.cpp" "src/fetch/CMakeFiles/vpsim_fetch.dir/collapsing_buffer.cpp.o" "gcc" "src/fetch/CMakeFiles/vpsim_fetch.dir/collapsing_buffer.cpp.o.d"
  "/root/repo/src/fetch/fetch_engine.cpp" "src/fetch/CMakeFiles/vpsim_fetch.dir/fetch_engine.cpp.o" "gcc" "src/fetch/CMakeFiles/vpsim_fetch.dir/fetch_engine.cpp.o.d"
  "/root/repo/src/fetch/icache.cpp" "src/fetch/CMakeFiles/vpsim_fetch.dir/icache.cpp.o" "gcc" "src/fetch/CMakeFiles/vpsim_fetch.dir/icache.cpp.o.d"
  "/root/repo/src/fetch/sequential_fetch.cpp" "src/fetch/CMakeFiles/vpsim_fetch.dir/sequential_fetch.cpp.o" "gcc" "src/fetch/CMakeFiles/vpsim_fetch.dir/sequential_fetch.cpp.o.d"
  "/root/repo/src/fetch/trace_cache.cpp" "src/fetch/CMakeFiles/vpsim_fetch.dir/trace_cache.cpp.o" "gcc" "src/fetch/CMakeFiles/vpsim_fetch.dir/trace_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/vpsim_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/vpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/bpred/CMakeFiles/vpsim_bpred.dir/DependInfo.cmake"
  "/root/repo/build-review/src/vm/CMakeFiles/vpsim_vm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/isa/CMakeFiles/vpsim_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
