file(REMOVE_RECURSE
  "libvpsim_fetch.a"
)
