# Empty compiler generated dependencies file for vpsim_fetch.
# This may be replaced when dependencies are built.
