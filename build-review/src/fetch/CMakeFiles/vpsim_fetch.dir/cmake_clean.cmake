file(REMOVE_RECURSE
  "CMakeFiles/vpsim_fetch.dir/branch_address_cache.cpp.o"
  "CMakeFiles/vpsim_fetch.dir/branch_address_cache.cpp.o.d"
  "CMakeFiles/vpsim_fetch.dir/collapsing_buffer.cpp.o"
  "CMakeFiles/vpsim_fetch.dir/collapsing_buffer.cpp.o.d"
  "CMakeFiles/vpsim_fetch.dir/fetch_engine.cpp.o"
  "CMakeFiles/vpsim_fetch.dir/fetch_engine.cpp.o.d"
  "CMakeFiles/vpsim_fetch.dir/icache.cpp.o"
  "CMakeFiles/vpsim_fetch.dir/icache.cpp.o.d"
  "CMakeFiles/vpsim_fetch.dir/sequential_fetch.cpp.o"
  "CMakeFiles/vpsim_fetch.dir/sequential_fetch.cpp.o.d"
  "CMakeFiles/vpsim_fetch.dir/trace_cache.cpp.o"
  "CMakeFiles/vpsim_fetch.dir/trace_cache.cpp.o.d"
  "libvpsim_fetch.a"
  "libvpsim_fetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpsim_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
