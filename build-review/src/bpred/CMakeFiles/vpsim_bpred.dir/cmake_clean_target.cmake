file(REMOVE_RECURSE
  "libvpsim_bpred.a"
)
