# Empty compiler generated dependencies file for vpsim_bpred.
# This may be replaced when dependencies are built.
