file(REMOVE_RECURSE
  "CMakeFiles/vpsim_bpred.dir/two_level.cpp.o"
  "CMakeFiles/vpsim_bpred.dir/two_level.cpp.o.d"
  "libvpsim_bpred.a"
  "libvpsim_bpred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpsim_bpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
