file(REMOVE_RECURSE
  "CMakeFiles/test_bpred.dir/test_bpred.cpp.o"
  "CMakeFiles/test_bpred.dir/test_bpred.cpp.o.d"
  "test_bpred"
  "test_bpred.pdb"
  "test_bpred[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bpred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
