file(REMOVE_RECURSE
  "CMakeFiles/test_fetch.dir/test_fetch.cpp.o"
  "CMakeFiles/test_fetch.dir/test_fetch.cpp.o.d"
  "test_fetch"
  "test_fetch.pdb"
  "test_fetch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
