# Empty dependencies file for test_fetch.
# This may be replaced when dependencies are built.
