file(REMOVE_RECURSE
  "CMakeFiles/test_vptable.dir/test_vptable.cpp.o"
  "CMakeFiles/test_vptable.dir/test_vptable.cpp.o.d"
  "test_vptable"
  "test_vptable.pdb"
  "test_vptable[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vptable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
