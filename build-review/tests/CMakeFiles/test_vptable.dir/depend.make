# Empty dependencies file for test_vptable.
# This may be replaced when dependencies are built.
