file(REMOVE_RECURSE
  "CMakeFiles/test_trace_cache.dir/test_trace_cache.cpp.o"
  "CMakeFiles/test_trace_cache.dir/test_trace_cache.cpp.o.d"
  "test_trace_cache"
  "test_trace_cache.pdb"
  "test_trace_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
