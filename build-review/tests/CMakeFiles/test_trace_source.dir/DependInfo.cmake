
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_trace_source.cpp" "tests/CMakeFiles/test_trace_source.dir/test_trace_source.cpp.o" "gcc" "tests/CMakeFiles/test_trace_source.dir/test_trace_source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/sim/CMakeFiles/vpsim_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/vpsim_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/analysis/CMakeFiles/vpsim_analysis.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workloads/CMakeFiles/vpsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build-review/src/vptable/CMakeFiles/vpsim_vptable.dir/DependInfo.cmake"
  "/root/repo/build-review/src/fetch/CMakeFiles/vpsim_fetch.dir/DependInfo.cmake"
  "/root/repo/build-review/src/bpred/CMakeFiles/vpsim_bpred.dir/DependInfo.cmake"
  "/root/repo/build-review/src/predictor/CMakeFiles/vpsim_predictor.dir/DependInfo.cmake"
  "/root/repo/build-review/src/vm/CMakeFiles/vpsim_vm.dir/DependInfo.cmake"
  "/root/repo/build-review/src/trace/CMakeFiles/vpsim_trace.dir/DependInfo.cmake"
  "/root/repo/build-review/src/isa/CMakeFiles/vpsim_isa.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/vpsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
