# Empty compiler generated dependencies file for test_trace_source.
# This may be replaced when dependencies are built.
