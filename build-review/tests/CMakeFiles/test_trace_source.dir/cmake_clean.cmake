file(REMOVE_RECURSE
  "CMakeFiles/test_trace_source.dir/test_trace_source.cpp.o"
  "CMakeFiles/test_trace_source.dir/test_trace_source.cpp.o.d"
  "test_trace_source"
  "test_trace_source.pdb"
  "test_trace_source[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
