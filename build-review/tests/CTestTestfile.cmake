# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/test_common[1]_include.cmake")
include("/root/repo/build-review/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build-review/tests/test_trace_cache[1]_include.cmake")
include("/root/repo/build-review/tests/test_isa[1]_include.cmake")
include("/root/repo/build-review/tests/test_vm[1]_include.cmake")
include("/root/repo/build-review/tests/test_assembler[1]_include.cmake")
include("/root/repo/build-review/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build-review/tests/test_workloads[1]_include.cmake")
include("/root/repo/build-review/tests/test_trace_io[1]_include.cmake")
include("/root/repo/build-review/tests/test_trace_source[1]_include.cmake")
include("/root/repo/build-review/tests/test_predictor[1]_include.cmake")
include("/root/repo/build-review/tests/test_bpred[1]_include.cmake")
include("/root/repo/build-review/tests/test_fetch[1]_include.cmake")
include("/root/repo/build-review/tests/test_vptable[1]_include.cmake")
include("/root/repo/build-review/tests/test_analysis[1]_include.cmake")
include("/root/repo/build-review/tests/test_core[1]_include.cmake")
include("/root/repo/build-review/tests/test_sim[1]_include.cmake")
include("/root/repo/build-review/tests/test_validation[1]_include.cmake")
include("/root/repo/build-review/tests/test_extensions[1]_include.cmake")
include("/root/repo/build-review/tests/test_integration[1]_include.cmake")
add_test(lint_project_selftest "/root/.pyenv/shims/python3" "/root/repo/scripts/lint_project.py" "--self-test" "--root" "/root/repo")
set_tests_properties(lint_project_selftest PROPERTIES  LABELS "lint" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;40;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(lint_project "/root/.pyenv/shims/python3" "/root/repo/scripts/lint_project.py" "--root" "/root/repo")
set_tests_properties(lint_project PROPERTIES  LABELS "lint" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;44;add_test;/root/repo/tests/CMakeLists.txt;0;")
