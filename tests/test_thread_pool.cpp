/**
 * @file
 * Tests for the work-stealing thread pool behind SimRunner: completion
 * of every submitted task, FIFO ordering on a single-threaded pool,
 * exception propagation through wait(), reuse across batches, and the
 * jobs=1 degenerate case.
 */

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hpp"
#include "common/resource_usage.hpp"
#include "common/thread_pool.hpp"

namespace vpsim
{
namespace
{

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    constexpr int tasks = 500;
    for (int i = 0; i < tasks; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), tasks);
}

TEST(ThreadPool, SingleThreadPreservesSubmissionOrder)
{
    // With one worker there is a single deque and the owner pops from
    // the front, so execution is FIFO. Parallel pools only promise
    // completion, not order.
    ThreadPool pool(1);
    std::vector<int> order;
    for (int i = 0; i < 50; ++i)
        pool.submit([&order, i] { order.push_back(i); });
    pool.wait();
    ASSERT_EQ(order.size(), 50u);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, WaitRethrowsTaskException)
{
    ThreadPool pool(2);
    std::atomic<int> survivors{0};
    pool.submit([] { throw std::runtime_error("boom"); });
    for (int i = 0; i < 20; ++i)
        pool.submit([&survivors] { ++survivors; });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The batch still drains: one failure must not wedge the pool.
    EXPECT_EQ(survivors.load(), 20);
}

TEST(ThreadPool, FirstExceptionWinsAndPoolRemainsUsable)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("first batch"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);

    // A later batch on the same pool runs clean.
    std::atomic<int> count{0};
    for (int i = 0; i < 10; ++i)
        pool.submit([&count] { ++count; });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), ThreadPool::defaultThreadCount());
    EXPECT_GE(pool.threadCount(), 1u);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();
    pool.wait();
}

TEST(ThreadPool, ManyWorkersAllParticipateInCompletion)
{
    // Tasks recording their executor must account for every submission
    // exactly once (no drops, no double-runs under stealing).
    ThreadPool pool(8);
    constexpr int tasks = 2000;
    std::vector<std::atomic<int>> ran(tasks);
    for (auto &flag : ran)
        flag.store(0);
    for (int i = 0; i < tasks; ++i)
        pool.submit([&ran, i] { ++ran[static_cast<std::size_t>(i)]; });
    pool.wait();
    for (int i = 0; i < tasks; ++i)
        EXPECT_EQ(ran[static_cast<std::size_t>(i)].load(), 1)
            << "task " << i;
}

TEST(ThreadPool, ConcurrentWarningsNeverTear)
{
    // Workers logging concurrently go through the sink under the
    // logging mutex: every line must arrive whole and exactly once.
    // Under TSan this doubles as a race check on the sink swap.
    std::vector<std::string> lines;
    LogSink previous = setLogSink([&lines](std::string_view line) {
        lines.emplace_back(line);
    });

    constexpr int tasks = 200;
    {
        ThreadPool pool(8);
        for (int i = 0; i < tasks; ++i)
            pool.submit([i] {
                warn("stress line " + std::to_string(i));
            });
        pool.wait();
    }
    setLogSink(std::move(previous));

    ASSERT_EQ(lines.size(), static_cast<std::size_t>(tasks));
    std::set<std::string> unique(lines.begin(), lines.end());
    EXPECT_EQ(unique.size(), static_cast<std::size_t>(tasks));
    for (const std::string &line : lines) {
        EXPECT_EQ(line.rfind("warn: stress line ", 0), 0u)
            << "torn or interleaved line: " << line;
    }
}

TEST(RssSampler, ReportsCurrentAndProcessPeak)
{
    const std::size_t current = RssSampler::currentRssBytes();
    EXPECT_GT(current, 0u);
    const std::size_t process_peak = RssSampler::processPeakRssBytes();
    EXPECT_GE(process_peak, current / 2);
}

TEST(RssSampler, PhasePeaksTrackAllocations)
{
    // A fast sampling period so the worker observes the allocation
    // within the test's lifetime; under TSan this exercises the
    // sampler thread against beginPhase()/peakBytes() callers.
    RssSampler sampler{std::chrono::milliseconds(1)};
    sampler.beginPhase();
    std::vector<char> ballast(16u << 20, 1);
    // Touch every page so the kernel actually backs the allocation.
    for (std::size_t i = 0; i < ballast.size(); i += 4096)
        ballast[i] = static_cast<char>(i);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const std::size_t with_ballast = sampler.peakBytes();
    EXPECT_GT(with_ballast, 0u);

    ballast.clear();
    ballast.shrink_to_fit();
    sampler.beginPhase();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // The new phase's peak restarts from the current footprint rather
    // than carrying the ballast phase forward.
    EXPECT_LE(sampler.peakBytes(), with_ballast);
}

TEST(RssSampler, ConcurrentPhaseResetsAndReadsAreSafe)
{
    RssSampler sampler{std::chrono::milliseconds(1)};
    std::atomic<bool> stop{false};
    ThreadPool pool(4);
    for (int worker = 0; worker < 4; ++worker) {
        pool.submit([&sampler, &stop, worker] {
            for (int round = 0; round < 200 && !stop.load(); ++round) {
                if (worker % 2 == 0)
                    sampler.beginPhase();
                else
                    (void)sampler.peakBytes();
            }
        });
    }
    pool.wait();
    stop.store(true);
    // beginPhase() restarts the peak from the live RSS, never zero.
    EXPECT_GT(sampler.peakBytes(), 0u);
}

} // namespace
} // namespace vpsim
