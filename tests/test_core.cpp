/**
 * @file
 * Tests for the machine models: the Section 3 ideal machine (including
 * an exact reproduction of the paper's Table 3.2 schedule) and the
 * Section 5 pipeline machine (branch penalty timing, window policies,
 * value-misprediction semantics).
 */

#include <gtest/gtest.h>

#include "core/ideal_machine.hpp"
#include "core/pipeline_machine.hpp"
#include "core/reference_machine.hpp"
#include "core/speedup.hpp"
#include "vm/interpreter.hpp"
#include "vm/program_builder.hpp"
#include "workloads/regs.hpp"

namespace vpsim
{
namespace
{

using namespace regs;

TraceRecord
rec(SeqNum seq, RegIndex rd, RegIndex rs1 = invalidReg, Value result = 0)
{
    TraceRecord record;
    record.seq = seq;
    record.pc = 0x1000 + seq * instBytes;
    record.nextPc = record.pc + instBytes;
    record.op = rs1 == invalidReg ? OpCode::Addi : OpCode::Add;
    record.rd = rd;
    record.rs1 = rs1 == invalidReg ? 0 : rs1;
    record.rs2 = rs1 == invalidReg ? invalidReg : 0;
    record.result = result;
    return record;
}

/** The Figure 3.2 DFG (see test_analysis.cpp for the arc list). */
std::vector<TraceRecord>
figure32()
{
    return {
        rec(0, 1), rec(1, 2, 1), rec(2, 3), rec(3, 4, 2),
        rec(4, 5, 1), rec(5, 6, 5), rec(6, 7, 3), rec(7, 8, 7),
    };
}

/** A serial dependence chain of @p length instructions. */
std::vector<TraceRecord>
serialChain(std::size_t length)
{
    std::vector<TraceRecord> trace;
    trace.push_back(rec(0, 1, invalidReg, 1));
    for (SeqNum seq = 1; seq < length; ++seq)
        trace.push_back(rec(seq, 1, 1, seq + 1));
    return trace;
}

/** Fully independent instructions. */
std::vector<TraceRecord>
independent(std::size_t length)
{
    std::vector<TraceRecord> trace;
    for (SeqNum seq = 0; seq < length; ++seq)
        trace.push_back(rec(seq, static_cast<RegIndex>(1 + seq % 8)));
    return trace;
}

TEST(IdealMachine, Table32PerfectVpSchedule)
{
    IdealMachineConfig config;
    config.fetchRate = 4;
    config.useValuePrediction = true;
    config.perfectValuePrediction = true;
    const IdealMachineResult result =
        runIdealMachine(figure32(), config, true);
    // Paper Table 3.2: instructions 1-4 execute in cycle 3, 5-8 in 4.
    const std::vector<Cycle> expected = {3, 3, 3, 3, 4, 4, 4, 4};
    ASSERT_EQ(result.execCycle.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(result.execCycle[i], expected[i]) << "inst " << i + 1;
    EXPECT_EQ(result.cycles, 4u);
}

TEST(IdealMachine, Table32NoVpSchedule)
{
    IdealMachineConfig config;
    config.fetchRate = 4;
    config.useValuePrediction = false;
    const IdealMachineResult result =
        runIdealMachine(figure32(), config, true);
    // Without VP the dependents 2, 4, 6, 8 slip behind their producers;
    // 5 and 7 are untouched because their producers' values are ready
    // by the time they issue (the "useless prediction" case).
    const std::vector<Cycle> expected = {3, 4, 3, 5, 4, 5, 4, 5};
    ASSERT_EQ(result.execCycle.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(result.execCycle[i], expected[i]) << "inst " << i + 1;
}

TEST(IdealMachine, UselessPredictionsAreCounted)
{
    IdealMachineConfig config;
    config.fetchRate = 4;
    config.useValuePrediction = true;
    config.perfectValuePrediction = true;
    const IdealMachineResult result = runIdealMachine(figure32(), config);
    // With perfect VP every producer is predicted (8 made) but only the
    // four same-cycle dependents (2, 4, 6, 8) actually benefit.
    EXPECT_EQ(result.predictionsMade, 8u);
    EXPECT_EQ(result.usefulPredictions, 4u);
}

TEST(IdealMachine, WiderFetchMakesPredictionsUseful)
{
    IdealMachineConfig config;
    config.useValuePrediction = true;
    config.perfectValuePrediction = true;
    config.fetchRate = 1;
    const IdealMachineResult narrow =
        runIdealMachine(figure32(), config);
    EXPECT_EQ(narrow.usefulPredictions, 0u)
        << "at 1 inst/cycle every operand is ready by issue time";
    config.fetchRate = 8;
    const IdealMachineResult wide = runIdealMachine(figure32(), config);
    EXPECT_GT(wide.usefulPredictions, 4u)
        << "with all 8 fetched together even inst 5/7 benefit";
}

TEST(IdealMachine, FetchRateBoundsIpc)
{
    const auto trace = independent(4000);
    for (const unsigned rate : {4u, 8u, 16u}) {
        IdealMachineConfig config;
        config.fetchRate = rate;
        const IdealMachineResult result = runIdealMachine(trace, config);
        EXPECT_NEAR(result.ipc, rate, 0.2)
            << "independent instructions run at fetch bandwidth";
    }
}

TEST(IdealMachine, SerialChainRunsAtOneIpcWithoutVp)
{
    const auto trace = serialChain(2000);
    IdealMachineConfig config;
    config.fetchRate = 40;
    const IdealMachineResult result = runIdealMachine(trace, config);
    EXPECT_NEAR(result.ipc, 1.0, 0.05);
}

TEST(IdealMachine, PerfectVpBreaksSerialChain)
{
    const auto trace = serialChain(2000);
    IdealMachineConfig config;
    config.fetchRate = 40;
    config.useValuePrediction = true;
    config.perfectValuePrediction = true;
    const IdealMachineResult result = runIdealMachine(trace, config);
    EXPECT_GT(result.ipc, 30.0)
        << "a fully predicted chain runs at fetch bandwidth";
}

TEST(IdealMachine, StridePredictorBreaksStrideChain)
{
    // r1 = r1 + 1 repeatedly at the SAME pc: a classic stride chain the
    // real (non-oracle) predictor must break after warmup.
    std::vector<TraceRecord> trace;
    for (SeqNum seq = 0; seq < 4000; ++seq) {
        TraceRecord record = rec(seq, 1, 1, seq + 1);
        record.pc = 0x1000; // one static instruction
        trace.push_back(record);
    }
    IdealMachineConfig config;
    config.fetchRate = 40;
    config.useValuePrediction = true;
    const IdealMachineResult result = runIdealMachine(trace, config);
    EXPECT_GT(result.ipc, 20.0);
    EXPECT_GT(result.predictionsCorrect, 3900u);
}

TEST(IdealMachine, WindowLimitsIpc)
{
    const auto trace = independent(4000);
    IdealMachineConfig config;
    config.fetchRate = 40;
    config.windowSize = 8;
    const IdealMachineResult result = runIdealMachine(trace, config);
    EXPECT_LE(result.ipc, 8.05) << "window of 8 caps IPC at 8";
}

TEST(IdealMachine, WrongPredictionsCostPenalty)
{
    // Producer values are random; classifier confidence is forced by a
    // wide window of correct predictions first... simpler: compare a
    // machine with penalty 0 and penalty 3 on a mixed trace; more
    // penalty can never speed it up.
    std::vector<TraceRecord> trace;
    Value v = 99;
    for (SeqNum seq = 0; seq < 2000; ++seq) {
        v = v * 6364136223846793005ull + 1442695040888963407ull;
        TraceRecord record = rec(seq, 1, 1, v);
        record.pc = 0x1000;
        trace.push_back(record);
    }
    IdealMachineConfig config;
    config.fetchRate = 40;
    config.useValuePrediction = true;
    config.vpPenalty = 0;
    const Cycle no_penalty = runIdealMachine(trace, config).cycles;
    config.vpPenalty = 3;
    const Cycle with_penalty = runIdealMachine(trace, config).cycles;
    EXPECT_GE(with_penalty, no_penalty);
}

TEST(IdealMachine, SpeedupHelperMatchesManualRatio)
{
    const auto trace = serialChain(500);
    IdealMachineConfig config;
    config.fetchRate = 16;
    config.perfectValuePrediction = true;
    const double speedup = idealVpSpeedup(trace, config);
    config.useValuePrediction = false;
    const double base =
        static_cast<double>(runIdealMachine(trace, config).cycles);
    config.useValuePrediction = true;
    const double vp =
        static_cast<double>(runIdealMachine(trace, config).cycles);
    EXPECT_DOUBLE_EQ(speedup, base / vp);
}

TEST(SpeedupHelpers, Means)
{
    EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
    EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(speedupToGain(1.33), 0.33);
}

// ---------------------------------------------------------------------
// Pipeline machine
// ---------------------------------------------------------------------

/** Capture a trace of a small loop program through the VM. */
std::vector<TraceRecord>
loopTrace(int iterations, int body_adds = 2)
{
    ProgramBuilder b("loop");
    Label loop = b.newLabel();
    b.li(s0, iterations);
    b.bind(loop);
    for (int i = 0; i < body_adds; ++i)
        b.addi(s1, s1, 1);
    b.addi(s0, s0, -1);
    b.bne(s0, zero, loop);
    b.halt();
    Program prog = b.build();
    std::vector<TraceRecord> trace;
    Interpreter interp(prog, Memory{});
    interp.run(0, &trace);
    return trace;
}

TEST(PipelineMachine, CommitsEverything)
{
    const auto trace = loopTrace(50);
    PipelineConfig config;
    const PipelineResult result = runPipelineMachine(trace, config);
    EXPECT_EQ(result.instructions, trace.size());
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.ipc, 0.5);
}

TEST(PipelineMachine, PerfectBpHasNoMispredicts)
{
    const auto trace = loopTrace(50);
    PipelineConfig config;
    config.perfectBranchPredictor = true;
    const PipelineResult result = runPipelineMachine(trace, config);
    EXPECT_EQ(result.branchMispredicts, 0u);
}

TEST(PipelineMachine, MispredictionsCostCycles)
{
    const auto trace = loopTrace(50);
    PipelineConfig ideal;
    ideal.perfectBranchPredictor = true;
    PipelineConfig real;
    real.perfectBranchPredictor = false;
    const PipelineResult r_ideal = runPipelineMachine(trace, ideal);
    const PipelineResult r_real = runPipelineMachine(trace, real);
    EXPECT_GT(r_real.branchMispredicts, 0u);
    EXPECT_GT(r_real.cycles, r_ideal.cycles);
}

TEST(PipelineMachine, TakenBranchLimitThrottlesIpc)
{
    // Without value prediction the loop counter chain serializes the
    // iterations, so the taken-branch limit never binds (the paper's
    // core observation!). With perfect VP the iterations decouple and
    // the fetch limit becomes the bottleneck.
    const auto trace = loopTrace(300, 1);
    PipelineConfig config;
    config.useValuePrediction = true;
    config.perfectValuePrediction = true;
    config.maxTakenBranches = 1;
    const double ipc1 = runPipelineMachine(trace, config).ipc;
    config.maxTakenBranches = 4;
    const double ipc4 = runPipelineMachine(trace, config).ipc;
    EXPECT_GT(ipc4, ipc1 * 1.5)
        << "a 3-inst loop at 1 taken/cycle caps near IPC 3";
}

TEST(PipelineMachine, VpSpeedsUpStrideLoop)
{
    const auto trace = loopTrace(300, 1);
    PipelineConfig config;
    config.maxTakenBranches = 0;
    const double speedup = pipelineVpSpeedup(trace, config);
    EXPECT_GT(speedup, 1.1)
        << "the counter chain is stride predictable";
}

TEST(PipelineMachine, PerfectVpIsAnUpperBound)
{
    const auto trace = loopTrace(200, 3);
    PipelineConfig config;
    config.maxTakenBranches = 0;
    config.useValuePrediction = true;
    const Cycle real_vp = runPipelineMachine(trace, config).cycles;
    config.perfectValuePrediction = true;
    const Cycle perfect_vp = runPipelineMachine(trace, config).cycles;
    EXPECT_LE(perfect_vp, real_vp);
}

TEST(PipelineMachine, RobWindowPolicyIsSlower)
{
    const auto trace = loopTrace(300, 6);
    PipelineConfig config;
    config.maxTakenBranches = 0;
    config.windowFreePolicy = WindowFreePolicy::AtExecute;
    const Cycle scheduling = runPipelineMachine(trace, config).cycles;
    config.windowFreePolicy = WindowFreePolicy::AtCommit;
    const Cycle reorder = runPipelineMachine(trace, config).cycles;
    EXPECT_GE(reorder, scheduling)
        << "freeing slots at commit can only add stalls";
}

TEST(PipelineMachine, WindowSlotReusePoliciesDivergeAdversarially)
{
    // Adversarial program for the slot-reuse policies: a long serial
    // chain in r1 (each link executes one cycle after its parent)
    // interleaved with bursts of independent instructions. Under
    // AtExecute the independents flow through the scheduling window as
    // soon as they execute; under AtCommit the chain head blocks
    // in-order commit, the ROB fills with already-executed independents,
    // and dispatch stalls.
    std::vector<TraceRecord> trace;
    SeqNum seq = 0;
    trace.push_back(rec(seq++, 1, invalidReg, 1));
    for (int link = 0; link < 60; ++link) {
        trace.push_back(rec(seq, 1, 1, seq));
        ++seq;
        for (int burst = 0; burst < 7; ++burst) {
            trace.push_back(
                rec(seq, static_cast<RegIndex>(2 + burst)));
            ++seq;
        }
    }

    PipelineConfig config;
    config.maxTakenBranches = 0;
    config.windowSize = 8;
    config.windowFreePolicy = WindowFreePolicy::AtExecute;
    const PipelineResult scheduling = runPipelineMachine(trace, config);
    config.windowFreePolicy = WindowFreePolicy::AtCommit;
    const PipelineResult reorder = runPipelineMachine(trace, config);

    EXPECT_LT(reorder.ipc, scheduling.ipc)
        << "the policies must actually differ on this program, or the "
           "knob is dead";

    // Little's law for the ROB policy: every instruction holds its slot
    // from dispatch to commit — at least frontendLatency (fetch ->
    // earliest execute) + 1 (commit follows execute) cycles — so
    // IPC <= windowSize / depth no matter how much ILP exists.
    const double min_depth = config.frontendLatency + 1.0;
    EXPECT_LE(reorder.ipc,
              static_cast<double>(config.windowSize) / min_depth + 1e-9)
        << "AtCommit IPC must respect the Little's-law occupancy cap";
    // The scheduling-window policy is NOT subject to that cap: the
    // chain links release their slots at execute, letting the window
    // turn over faster than commit ever could.
    EXPECT_GT(scheduling.ipc,
              static_cast<double>(config.windowSize) / min_depth);
}

TEST(PipelineMachine, RetireTimingUpdateIsNoBetter)
{
    const auto trace = loopTrace(400, 2);
    PipelineConfig config;
    config.maxTakenBranches = 0;
    config.useValuePrediction = true;
    config.vpUpdateTiming = VpUpdateTiming::Dispatch;
    const PipelineResult dispatch = runPipelineMachine(trace, config);
    config.vpUpdateTiming = VpUpdateTiming::Retire;
    const PipelineResult retire = runPipelineMachine(trace, config);
    EXPECT_GE(retire.cycles, dispatch.cycles)
        << "stale predictor state cannot make the machine faster";
}

TEST(PipelineMachine, TraceCacheBeatsSingleTakenBranch)
{
    // As above: the fetch-bandwidth comparison needs value prediction
    // to decouple the loop iterations first.
    const auto trace = loopTrace(400, 1);
    PipelineConfig seq;
    seq.useValuePrediction = true;
    seq.perfectValuePrediction = true;
    seq.frontEnd = FrontEndKind::Sequential;
    seq.maxTakenBranches = 1;
    PipelineConfig tc = seq;
    tc.frontEnd = FrontEndKind::TraceCache;
    const double seq_ipc = runPipelineMachine(trace, seq).ipc;
    const PipelineResult tc_result = runPipelineMachine(trace, tc);
    EXPECT_GT(tc_result.ipc, seq_ipc)
        << "trace lines cross taken branches";
    EXPECT_GT(tc_result.tcHitRate, 0.5);
}

TEST(PipelineMachine, InterleavedTableDenialsReduceSpeedup)
{
    const auto trace = loopTrace(400, 1);
    PipelineConfig config;
    config.frontEnd = FrontEndKind::TraceCache;
    config.useValuePrediction = true;
    config.useInterleavedVpTable = true;
    config.vpTableConfig.banks = 1; // worst case: everything conflicts
    const PipelineResult banked = runPipelineMachine(trace, config);
    EXPECT_GT(banked.vptDeniedRequests, 0u);

    config.useInterleavedVpTable = false;
    const PipelineResult free_table = runPipelineMachine(trace, config);
    EXPECT_LE(free_table.cycles, banked.cycles)
        << "denied predictions cannot make the machine faster";
}

TEST(PipelineTiming, IndependentBundleTakesFourCycles)
{
    // 4 independent instructions, one bundle: fetch c1, decode c2,
    // execute c3, commit c4.
    const auto trace = independent(4);
    PipelineConfig config;
    config.maxTakenBranches = 0;
    const PipelineResult result = runPipelineMachine(trace, config);
    EXPECT_EQ(result.cycles, 4u);
}

TEST(PipelineTiming, SerialChainAddsOneCyclePerLink)
{
    // i1 <- i0, i2 <- i1: execute cycles 3, 4, 5; last commit cycle 6.
    const std::vector<TraceRecord> trace = {
        rec(0, 1, invalidReg, 10),
        rec(1, 1, 1, 20),
        rec(2, 1, 1, 30),
    };
    PipelineConfig config;
    config.maxTakenBranches = 0;
    const PipelineResult result = runPipelineMachine(trace, config);
    EXPECT_EQ(result.cycles, 6u);
}

TEST(PipelineTiming, PerfectVpCollapsesTheChain)
{
    const std::vector<TraceRecord> trace = {
        rec(0, 1, invalidReg, 10),
        rec(1, 1, 1, 20),
        rec(2, 1, 1, 30),
    };
    PipelineConfig config;
    config.maxTakenBranches = 0;
    config.useValuePrediction = true;
    config.perfectValuePrediction = true;
    const PipelineResult result = runPipelineMachine(trace, config);
    EXPECT_EQ(result.cycles, 4u)
        << "all three execute in cycle 3 on predicted operands";
}

TEST(PipelineTiming, MispredictedBranchCostsThreeCycles)
{
    // A cold BTB mispredicts the taken branch. Branch: fetch c1, exec
    // c3, fetch resumes c4; the next instruction executes c6, commits
    // c7 — the paper's 3-cycle penalty relative to the 4-cycle ideal.
    std::vector<TraceRecord> trace;
    TraceRecord branch;
    branch.seq = 0;
    branch.pc = 0x1000;
    branch.op = OpCode::Beq;
    branch.rs1 = 0;
    branch.rs2 = 0;
    branch.taken = true;
    branch.nextPc = 0x2000;
    trace.push_back(branch);
    TraceRecord next = rec(1, 1, invalidReg, 5);
    next.pc = 0x2000;
    next.nextPc = 0x2004;
    trace.push_back(next);

    PipelineConfig config;
    config.maxTakenBranches = 0;
    config.perfectBranchPredictor = false;
    const PipelineResult result = runPipelineMachine(trace, config);
    EXPECT_EQ(result.cycles, 7u);
    EXPECT_EQ(result.branchMispredicts, 1u);
}

TEST(PipelineTiming, WrongValuePredictionCostsOneCycle)
{
    // Producer at the same pc twice with non-stride values: warm the
    // table so the second instance is predicted WRONG with a saturated
    // counter... simpler: perfect VP with penalty checked via the ideal
    // machine covers the arithmetic; here assert the pipeline's wrong
    // path produces a strictly larger cycle count than perfect VP on a
    // value stream that defeats the stride predictor.
    std::vector<TraceRecord> trace;
    Value v = 1;
    for (SeqNum i = 0; i < 64; ++i) {
        v = v * 2862933555777941757ull + 3037000493ull;
        TraceRecord producer = rec(i * 2, 1, invalidReg, v);
        producer.pc = 0x1000;
        TraceRecord consumer = rec(i * 2 + 1, 2, 1, v + 1);
        consumer.pc = 0x1004;
        trace.push_back(producer);
        trace.push_back(consumer);
    }
    for (SeqNum i = 0; i < trace.size(); ++i)
        trace[i].seq = i;
    PipelineConfig config;
    config.maxTakenBranches = 0;
    config.useValuePrediction = true;
    const Cycle real = runPipelineMachine(trace, config).cycles;
    config.perfectValuePrediction = true;
    const Cycle perfect = runPipelineMachine(trace, config).cycles;
    EXPECT_GE(real, perfect);
}

TEST(PipelineMachine, LoadsOnlyScopePredictsFewer)
{
    const auto trace = loopTrace(200, 2);
    PipelineConfig config;
    config.maxTakenBranches = 0;
    config.useValuePrediction = true;
    config.vpScope = VpScope::AllInstructions;
    const PipelineResult all = runPipelineMachine(trace, config);
    config.vpScope = VpScope::LoadsOnly;
    const PipelineResult loads = runPipelineMachine(trace, config);
    EXPECT_LT(loads.vpPredictionsMade, all.vpPredictionsMade);
    EXPECT_EQ(loads.vpPredictionsMade, 0u)
        << "this loop has no loads at all";
}

TEST(IdealMachine, LoadsOnlyScopeIsWeaker)
{
    // A same-pc stride chain (each instance predictable) with no loads.
    std::vector<TraceRecord> chain;
    for (SeqNum seq = 0; seq < 500; ++seq) {
        TraceRecord record = rec(seq, 1, 1, seq + 1);
        record.pc = 0x1000;
        chain.push_back(record);
    }
    IdealMachineConfig config;
    config.fetchRate = 40;
    config.useValuePrediction = true;
    config.vpScope = VpScope::LoadsOnly;
    const IdealMachineResult loads = runIdealMachine(chain, config);
    EXPECT_EQ(loads.predictionsMade, 0u) << "chain has no loads";
    config.vpScope = VpScope::AllInstructions;
    const IdealMachineResult all = runIdealMachine(chain, config);
    EXPECT_LT(all.cycles, loads.cycles);
}

TEST(Reports, IdealMachineReportMentionsPredictions)
{
    const auto trace = loopTrace(100, 2);
    IdealMachineConfig config;
    config.fetchRate = 16;
    config.useValuePrediction = true;
    const std::string text = runIdealMachine(trace, config).report();
    EXPECT_NE(text.find("ideal machine"), std::string::npos);
    EXPECT_NE(text.find("value predictions"), std::string::npos);
}

TEST(Reports, PipelineReportCoversEnabledFeatures)
{
    const auto trace = loopTrace(200, 2);
    PipelineConfig config;
    config.frontEnd = FrontEndKind::TraceCache;
    config.useValuePrediction = true;
    config.useInterleavedVpTable = true;
    const std::string text = runPipelineMachine(trace, config).report();
    EXPECT_NE(text.find("pipeline machine"), std::string::npos);
    EXPECT_NE(text.find("trace cache"), std::string::npos);
    EXPECT_NE(text.find("vp table"), std::string::npos);
}

TEST(PipelineMachine, EmptyTrace)
{
    const PipelineResult result = runPipelineMachine({}, {});
    EXPECT_EQ(result.cycles, 0u);
    EXPECT_EQ(result.instructions, 0u);
}

/** Property sweep: VP off vs on across front ends must terminate and
 *  commit every instruction. */
class PipelineProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, bool, bool>>
{
};

TEST_P(PipelineProperty, AlwaysCommitsAll)
{
    const auto [taken, vp, ideal_bp] = GetParam();
    const auto trace = loopTrace(120, 3);
    PipelineConfig config;
    config.maxTakenBranches = taken;
    config.useValuePrediction = vp;
    config.perfectBranchPredictor = ideal_bp;
    const PipelineResult result = runPipelineMachine(trace, config);
    EXPECT_EQ(result.instructions, trace.size());
    EXPECT_GT(result.ipc, 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineProperty,
    ::testing::Combine(::testing::Values(0u, 1u, 2u, 4u),
                       ::testing::Bool(), ::testing::Bool()));

/** Field-by-field equality for the span-API equivalence tests. */
void
expectSameIdealResult(const IdealMachineResult &a,
                      const IdealMachineResult &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.predictionsMade, b.predictionsMade);
    EXPECT_EQ(a.predictionsCorrect, b.predictionsCorrect);
    EXPECT_EQ(a.predictionsWrong, b.predictionsWrong);
    EXPECT_EQ(a.correctlyPredictedUses, b.correctlyPredictedUses);
    EXPECT_EQ(a.stallingUses, b.stallingUses);
    EXPECT_EQ(a.usefulPredictions, b.usefulPredictions);
    EXPECT_EQ(a.execCycle, b.execCycle);
}

/** Long enough to cross several defaultBlockRecords boundaries. */
std::vector<TraceRecord>
longMixedTrace()
{
    std::vector<TraceRecord> trace = serialChain(6000);
    const auto extra = independent(4500);
    trace.insert(trace.end(), extra.begin(), extra.end());
    for (SeqNum seq = 0; seq < trace.size(); ++seq)
        trace[seq].seq = seq;
    return trace;
}

TEST(IdealMachine, SourceOverloadMatchesVectorOverload)
{
    const auto trace = longMixedTrace();
    for (const bool vp : {false, true}) {
        IdealMachineConfig config;
        config.useValuePrediction = vp;
        const IdealMachineResult from_vector =
            runIdealMachine(trace, config, /*keep_schedule=*/true);
        VectorTraceSource source{trace};
        const IdealMachineResult from_source =
            runIdealMachine(source, config, /*keep_schedule=*/true);
        expectSameIdealResult(from_vector, from_source);
    }
}

TEST(IdealMachine, SpeedupOverloadsAgree)
{
    const auto trace = serialChain(5000);
    IdealMachineConfig config;
    VectorTraceSource source{trace};
    EXPECT_DOUBLE_EQ(idealVpSpeedup(trace, config),
                     idealVpSpeedup(source, config));
}

// The reference and pipeline machines take spans only; a caller
// holding a TraceSource materializes explicitly. These tests pin the
// contract that an explicitly materialized source is equivalent to
// handing the machine the vector directly.
TEST(ReferenceMachine, MaterializedSourceMatchesSpanOverload)
{
    const auto trace = figure32();
    IdealMachineConfig config;
    config.useValuePrediction = true;
    const IdealMachineResult from_span =
        runReferenceIdealMachine(TraceSpan(trace), config);
    VectorTraceSource source{trace};
    std::vector<TraceRecord> storage;
    const IdealMachineResult from_source = runReferenceIdealMachine(
        materializeTrace(source, storage), config);
    expectSameIdealResult(from_span, from_source);
}

TEST(PipelineMachine, MaterializedSourceMatchesSpanOverload)
{
    const auto trace = loopTrace(200, 4);
    PipelineConfig config;
    config.useValuePrediction = true;
    const PipelineResult from_span = runPipelineMachine(trace, config);
    VectorTraceSource source{trace};
    std::vector<TraceRecord> storage;
    const PipelineResult from_source = runPipelineMachine(
        materializeTrace(source, storage), config);
    EXPECT_EQ(from_span.cycles, from_source.cycles);
    EXPECT_EQ(from_span.instructions, from_source.instructions);
    EXPECT_EQ(from_span.branchMispredicts,
              from_source.branchMispredicts);
    EXPECT_EQ(from_span.vpPredictionsMade,
              from_source.vpPredictionsMade);
}

} // namespace
} // namespace vpsim
