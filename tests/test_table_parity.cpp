/**
 * @file
 * Parity tests pinning the open-addressed PredictionTable to the
 * semantics of the std::unordered_map implementation it replaced.
 *
 * The reference table below reimplements the legacy storage exactly:
 * a hash map for the capacity == 0 "infinite table" (grows, never
 * evicts) and a direct-mapped tagged array for finite capacities
 * (evicts on index conflict). A seeded random operation stream is
 * applied to both tables and every observable — hit/miss, the
 * allocated flag, entry contents, live size — must agree at every
 * step, across all three capacity classes the experiments use.
 *
 * A second suite drives every predictor kind through the classified
 * stack twice — once via the split predict()/update() pair and once
 * via the fused predictAndTrain() added for the de-virtualized
 * pipeline loop — asserting identical predictions and statistics, on
 * infinite and finite (evicting) tables alike.
 */

#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "predictor/factory.hpp"
#include "predictor/table_storage.hpp"

namespace vpsim
{
namespace
{

/** Per-pc state rich enough to detect a lost or stale entry. */
struct ParityEntry
{
    std::uint64_t stamp = 0;
    std::int64_t counter = 0;
};

/**
 * The legacy PredictionTable semantics, verbatim: what the class did
 * before the open-addressed rewrite (unordered_map when unbounded,
 * direct-mapped tagged slots otherwise).
 */
template <typename Entry>
class LegacyPredictionTable
{
  public:
    explicit LegacyPredictionTable(std::size_t table_capacity)
        : capacity(table_capacity)
    {
        if (capacity != 0)
            slots.resize(capacity);
    }

    Entry *
    find(Addr pc)
    {
        if (capacity == 0) {
            auto it = map.find(pc);
            return it == map.end() ? nullptr : &it->second;
        }
        Slot &slot = slots[indexOf(pc)];
        return (slot.valid && slot.tag == pc) ? &slot.entry : nullptr;
    }

    Entry &
    findOrAllocate(Addr pc, bool *allocated)
    {
        if (capacity == 0) {
            auto [it, fresh] = map.try_emplace(pc);
            *allocated = fresh;
            return it->second;
        }
        Slot &slot = slots[indexOf(pc)];
        const bool fresh = !slot.valid || slot.tag != pc;
        if (fresh) {
            slot.valid = true;
            slot.tag = pc;
            slot.entry = Entry{};
        }
        *allocated = fresh;
        return slot.entry;
    }

    std::size_t
    size() const
    {
        if (capacity == 0)
            return map.size();
        std::size_t live = 0;
        for (const Slot &slot : slots)
            live += slot.valid ? 1 : 0;
        return live;
    }

    void
    clear()
    {
        map.clear();
        for (Slot &slot : slots)
            slot.valid = false;
    }

  private:
    struct Slot
    {
        bool valid = false;
        Addr tag = 0;
        Entry entry{};
    };

    std::size_t
    indexOf(Addr pc) const
    {
        return (pc / instBytes) & (capacity - 1);
    }

    std::size_t capacity;
    std::unordered_map<Addr, Entry> map;
    std::vector<Slot> slots;
};

class TableParity : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(TableParity, RandomizedOpsMatchTheLegacyHashMap)
{
    const std::size_t capacity = GetParam();
    PredictionTable<ParityEntry> table(capacity);
    LegacyPredictionTable<ParityEntry> legacy(capacity);

    // Word-aligned pc pool sized to exercise direct-mapped conflicts at
    // capacity 16 (4x aliasing) and open-table growth at capacity 0.
    Rng rng(0x7a617269ull + capacity);
    std::vector<Addr> pool;
    for (std::size_t i = 0; i < 4096; ++i)
        pool.push_back(0x1000 + i * instBytes);

    std::uint64_t stamp = 0;
    for (int op = 0; op < 60000; ++op) {
        const Addr pc = pool[rng.nextBelow(pool.size())];
        switch (rng.nextBelow(8)) {
          case 0: // Pure lookup.
          case 1: {
            ParityEntry *mine = table.find(pc);
            ParityEntry *ref = legacy.find(pc);
            ASSERT_EQ(mine != nullptr, ref != nullptr)
                << "hit/miss diverged on pc " << pc << " at op " << op;
            if (mine) {
                EXPECT_EQ(mine->stamp, ref->stamp);
                EXPECT_EQ(mine->counter, ref->counter);
            }
            break;
          }
          case 2: { // Occasional full reset.
            if (rng.nextBelow(1000) == 0) {
                table.clear();
                legacy.clear();
            }
            break;
          }
          default: { // Allocate (possibly evicting) and mutate.
            bool mine_fresh = false;
            bool ref_fresh = false;
            const bool use_fused = rng.nextBelow(2) == 0;
            ParityEntry &mine = use_fused
                ? table.findOrAllocateFused(pc)
                : table.findOrAllocate(pc, &mine_fresh);
            ParityEntry &ref = legacy.findOrAllocate(pc, &ref_fresh);
            // The fused variant reports no allocated flag; compare
            // eviction decisions only when both were collected.
            if (!use_fused)
                ASSERT_EQ(mine_fresh, ref_fresh)
                    << "eviction decision diverged on pc " << pc
                    << " at op " << op;
            EXPECT_EQ(mine.stamp, ref.stamp)
                << "resident state diverged on pc " << pc << " at op "
                << op;
            EXPECT_EQ(mine.counter, ref.counter);
            ++stamp;
            mine.stamp = stamp;
            ref.stamp = stamp;
            mine.counter += static_cast<std::int64_t>(pc & 0xff);
            ref.counter += static_cast<std::int64_t>(pc & 0xff);
            break;
          }
        }
        if ((op & 0xfff) == 0)
            ASSERT_EQ(table.size(), legacy.size()) << "at op " << op;
    }
    EXPECT_EQ(table.size(), legacy.size());
}

INSTANTIATE_TEST_SUITE_P(Capacities, TableParity,
                         ::testing::Values(std::size_t{0},
                                           std::size_t{16},
                                           std::size_t{1024}),
                         [](const auto &info) {
                             return info.param == 0
                                 ? std::string("infinite")
                                 : "finite" +
                                       std::to_string(info.param);
                         });

struct PredictorParityCase
{
    PredictorKind kind;
    const char *name;
};

class PredictorParity
    : public ::testing::TestWithParam<PredictorParityCase>
{
};

TEST_P(PredictorParity, FusedAndSplitPathsAgreeAcrossCapacities)
{
    for (const std::size_t capacity : {std::size_t{0}, std::size_t{16},
                                       std::size_t{1024}}) {
        auto split = makeClassifiedPredictor(GetParam().kind, capacity);
        auto fused = makeClassifiedPredictor(GetParam().kind, capacity);

        // Synthetic stream with per-pc value locality: constants,
        // strides, and noise, over enough distinct pcs to force
        // finite-table evictions.
        Rng rng(0xfeedull ^ static_cast<std::uint64_t>(capacity));
        std::vector<Addr> pcs;
        for (std::size_t i = 0; i < 512; ++i)
            pcs.push_back(0x4000 + i * instBytes);
        std::unordered_map<Addr, Value> current;

        for (int i = 0; i < 40000; ++i) {
            const Addr pc = pcs[rng.nextBelow(pcs.size())];
            Value &value = current[pc];
            switch (pc % 3) {
              case 0: break;                       // constant
              case 1: value += 8; break;           // strided
              default:
                if (rng.nextBelow(4) == 0)         // mostly stable
                    value = rng.nextBelow(1 << 20);
                break;
            }

            const ClassifiedPrediction via_split = split->predict(pc);
            split->update(pc, via_split, value);
            const ClassifiedPrediction via_fused =
                fused->predictAndTrain(pc, value);

            ASSERT_EQ(via_split.predicted, via_fused.predicted)
                << GetParam().name << " capacity " << capacity
                << " diverged at event " << i;
            if (via_split.predicted)
                ASSERT_EQ(via_split.value, via_fused.value)
                    << GetParam().name << " capacity " << capacity
                    << " at event " << i;
            ASSERT_EQ(via_split.rawAvailable, via_fused.rawAvailable);
        }
        EXPECT_EQ(split->lookups(), fused->lookups());
        EXPECT_EQ(split->predictionsMade(), fused->predictionsMade());
        EXPECT_EQ(split->predictionsCorrect(),
                  fused->predictionsCorrect());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, PredictorParity,
    ::testing::Values(
        PredictorParityCase{PredictorKind::LastValue, "last-value"},
        PredictorParityCase{PredictorKind::Stride, "stride"},
        PredictorParityCase{PredictorKind::TwoDeltaStride, "2-delta"},
        PredictorParityCase{PredictorKind::Hybrid, "hybrid"},
        PredictorParityCase{PredictorKind::Fcm, "fcm"}),
    [](const auto &info) { return std::string(info.param.name) ==
                                  "2-delta"
                               ? std::string("two_delta")
                               : std::string(info.param.name) ==
                                     "last-value"
                                   ? std::string("last_value")
                                   : std::string(info.param.name); });

} // namespace
} // namespace vpsim
