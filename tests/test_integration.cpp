/**
 * @file
 * End-to-end integration tests: run the actual paper experiments on
 * short traces and assert the qualitative results the paper reports.
 * These are the "does the reproduction reproduce" tests.
 */

#include <gtest/gtest.h>

#include "analysis/did.hpp"
#include "analysis/predictability.hpp"
#include "core/ideal_machine.hpp"
#include "core/pipeline_machine.hpp"
#include "workloads/workload.hpp"

namespace vpsim
{
namespace
{

constexpr std::uint64_t traceLen = 60000;

class BenchmarkIntegration : public ::testing::TestWithParam<std::string>
{
  protected:
    std::vector<TraceRecord>
    trace() const
    {
        return captureWorkloadTrace(GetParam(), traceLen);
    }
};

TEST_P(BenchmarkIntegration, AverageDidExceedsFour)
{
    // Paper Figure 3.3: every benchmark's average DID is greater than
    // the 4-wide fetch of 1998 processors.
    const DidAnalysis did = analyzeDid(trace());
    EXPECT_GT(did.averageDid, 4.0);
    EXPECT_GT(did.totalArcs, traceLen / 2);
}

TEST_P(BenchmarkIntegration, ManyDependenciesSpanAtLeastFour)
{
    // Paper Figure 3.4: a large share of dependencies (60% on average)
    // have DID >= 4; per benchmark we require at least 25%.
    const DidAnalysis did = analyzeDid(trace());
    EXPECT_GT(did.fracDidAtLeast4, 0.25);
}

TEST_P(BenchmarkIntegration, SpeedupGrowsWithFetchRate)
{
    // Paper Figure 3.1: the VP speedup is (weakly) monotone in the
    // fetch rate and near zero at 4 instructions/cycle.
    const auto records = trace();
    double previous = 0.0;
    for (const unsigned rate : {4u, 8u, 16u, 40u}) {
        IdealMachineConfig config;
        config.fetchRate = rate;
        const double gain = idealVpSpeedup(records, config) - 1.0;
        EXPECT_GE(gain, previous - 0.03)
            << "speedup dropped between fetch rates at BW=" << rate;
        previous = std::max(previous, gain);
    }
    IdealMachineConfig narrow;
    narrow.fetchRate = 4;
    EXPECT_LT(idealVpSpeedup(records, narrow) - 1.0, 0.08)
        << "at 4-wide fetch value prediction barely helps (paper)";
}

TEST_P(BenchmarkIntegration, VpNeverSlowsTheIdealMachineMuch)
{
    const auto records = trace();
    for (const unsigned rate : {4u, 16u, 40u}) {
        IdealMachineConfig config;
        config.fetchRate = rate;
        EXPECT_GT(idealVpSpeedup(records, config), 0.97);
    }
}

TEST_P(BenchmarkIntegration, PipelineSpeedupGrowsWithTakenBranches)
{
    // Paper Figure 5.1 shape: more taken branches per cycle -> more VP
    // speedup, with perfect branch prediction.
    const auto records = trace();
    PipelineConfig config;
    config.perfectBranchPredictor = true;
    config.maxTakenBranches = 1;
    const double at1 = pipelineVpSpeedup(records, config);
    config.maxTakenBranches = 0;
    const double unlimited = pipelineVpSpeedup(records, config);
    EXPECT_GE(unlimited, at1 - 0.02);
    EXPECT_GT(unlimited, 0.99);
}

TEST_P(BenchmarkIntegration, TraceCacheRunsAndHits)
{
    const auto records = trace();
    PipelineConfig config;
    config.frontEnd = FrontEndKind::TraceCache;
    config.useValuePrediction = true;
    const PipelineResult result = runPipelineMachine(records, config);
    EXPECT_EQ(result.instructions, records.size());
    EXPECT_GT(result.tcHitRate, 0.2)
        << "looping benchmarks must hit a 64-line trace cache";
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkIntegration,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

TEST(PaperClaims, MostPredictableLongDistanceBenchmarksAreM88kAndVortex)
{
    // Paper Figure 3.5: m88ksim and vortex show the largest fraction of
    // dependencies that are BOTH value predictable AND DID >= 4, which
    // is why they benefit most from wide fetch.
    double m88k = 0.0;
    double vortex = 0.0;
    double best_other = 0.0;
    for (const auto &name : workloadNames()) {
        const auto records = captureWorkloadTrace(name, traceLen);
        const double frac =
            analyzePredictability(records).fracPredictableDid4Plus;
        if (name == "m88ksim")
            m88k = frac;
        else if (name == "vortex")
            vortex = frac;
        else
            best_other = std::max(best_other, frac);
    }
    EXPECT_GT(m88k, 0.3);
    EXPECT_GT(vortex, 0.3);
    EXPECT_GT((m88k + vortex) / 2.0, best_other)
        << "the two database/simulator codes lead, as in the paper";
}

TEST(PaperClaims, BtbAccuracyIsInThePaperBand)
{
    // Paper Section 5: their 2-level PAp BTB averaged 86% across the
    // benchmarks. Ours must land in a plausible band.
    double sum = 0.0;
    for (const auto &name : workloadNames()) {
        const auto records = captureWorkloadTrace(name, traceLen);
        PipelineConfig config;
        config.perfectBranchPredictor = false;
        config.maxTakenBranches = 4;
        sum += runPipelineMachine(records, config).branchAccuracy;
    }
    const double average = sum / 8.0;
    EXPECT_GT(average, 0.80);
    EXPECT_LT(average, 0.97);
}

TEST(PaperClaims, BadBranchPredictionThrottlesVpAtHighBandwidth)
{
    // Paper Figures 5.1 vs 5.2: at n=4 the realistic BTB yields less VP
    // speedup than the ideal predictor, on average.
    double ideal_sum = 0.0;
    double real_sum = 0.0;
    for (const auto &name : workloadNames()) {
        const auto records = captureWorkloadTrace(name, traceLen);
        PipelineConfig config;
        config.maxTakenBranches = 4;
        config.perfectBranchPredictor = true;
        ideal_sum += pipelineVpSpeedup(records, config);
        config.perfectBranchPredictor = false;
        real_sum += pipelineVpSpeedup(records, config);
    }
    EXPECT_GT(ideal_sum, real_sum)
        << "the 2-level BTB must not beat the oracle on average";
}

TEST(PaperClaims, TinyWindowsSuppressValuePrediction)
{
    // DESIGN.md ablation: per-benchmark window scaling is non-monotone
    // (a bigger window also speeds the baseline and exposes more wrong
    // speculations), but on average a 16-entry window leaves far less
    // room for value prediction than a 256-entry one at BW=40.
    double w16 = 0.0;
    double w256 = 0.0;
    for (const auto &name : workloadNames()) {
        const auto records = captureWorkloadTrace(name, traceLen);
        IdealMachineConfig config;
        config.fetchRate = 40;
        config.windowSize = 16;
        w16 += idealVpSpeedup(records, config);
        config.windowSize = 256;
        w256 += idealVpSpeedup(records, config);
    }
    EXPECT_GT(w256, w16);
}

} // namespace
} // namespace vpsim
