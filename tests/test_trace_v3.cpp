/**
 * @file
 * Tests for the v3 block-framed trace format, salvage containment, and
 * the bounded-memory streaming source.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/io.hpp"
#include "trace/streaming_source.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_v3.hpp"
#include "workloads/workload.hpp"

namespace vpsim
{
namespace
{

std::string
tempPath(const std::string &name)
{
    const char *dir = std::getenv("TMPDIR");
    return std::string(dir ? dir : "/tmp") + "/" + name;
}

struct InjectorGuard
{
    ~InjectorGuard() { io::configureFaultInjection(""); }
};

std::vector<unsigned char>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<unsigned char>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
spit(const std::string &path, const std::vector<unsigned char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

/**
 * Walk the block frames of a v3 image and return the file offset of
 * block @p index's frame header (records seen before it in *skipped).
 */
std::size_t
blockOffset(const std::vector<unsigned char> &bytes, std::size_t index,
            std::uint64_t *records_before = nullptr,
            std::uint32_t *record_count = nullptr)
{
    auto u32 = [&bytes](std::size_t at) {
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(bytes[at + i]) << (8 * i);
        return v;
    };
    std::size_t offset = v3HeaderBytes;
    std::uint64_t before = 0;
    for (std::size_t b = 0;; ++b) {
        EXPECT_EQ(std::string(bytes.begin() + offset,
                              bytes.begin() + offset + 4),
                  "VPB3");
        const std::uint32_t count = u32(offset + 4);
        if (b == index) {
            if (records_before)
                *records_before = before;
            if (record_count)
                *record_count = count;
            return offset;
        }
        before += count;
        offset += v3BlockFrameBytes + u32(offset + 8) + 4;
    }
}

void
expectSameRecords(const std::vector<TraceRecord> &got,
                  const std::vector<TraceRecord> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got[i].seq, want[i].seq) << "record " << i;
        ASSERT_EQ(got[i].pc, want[i].pc) << "record " << i;
        ASSERT_EQ(got[i].nextPc, want[i].nextPc) << "record " << i;
        ASSERT_EQ(got[i].memAddr, want[i].memAddr) << "record " << i;
        ASSERT_EQ(got[i].result, want[i].result) << "record " << i;
        ASSERT_EQ(got[i].op, want[i].op) << "record " << i;
        ASSERT_EQ(got[i].rd, want[i].rd) << "record " << i;
        ASSERT_EQ(got[i].rs1, want[i].rs1) << "record " << i;
        ASSERT_EQ(got[i].rs2, want[i].rs2) << "record " << i;
        ASSERT_EQ(got[i].taken, want[i].taken) << "record " << i;
    }
}

TEST(TraceV3, RoundTripsARealTraceAcrossBlocks)
{
    const auto original = captureWorkloadTrace("compress", 5000);
    const std::string path = tempPath("vpsim_v3_roundtrip.vptrace");
    ASSERT_TRUE(writeTraceV3(path, original, 512).isOk());

    std::vector<TraceRecord> reloaded;
    ASSERT_TRUE(readTraceV3(path, &reloaded).isOk());
    expectSameRecords(reloaded, original);
    std::remove(path.c_str());
}

TEST(TraceV3, EmptyTraceRoundTrips)
{
    const std::string path = tempPath("vpsim_v3_empty.vptrace");
    ASSERT_TRUE(writeTraceV3(path, {}).isOk());
    std::vector<TraceRecord> reloaded = {TraceRecord()};
    ASSERT_TRUE(readTraceV3(path, &reloaded).isOk());
    EXPECT_TRUE(reloaded.empty());
    std::remove(path.c_str());
}

TEST(TraceV3, StreamedAppendsMatchTheWholeFileWriterByteForByte)
{
    const auto original = captureWorkloadTrace("go", 3000);
    const std::string whole = tempPath("vpsim_v3_whole.vptrace");
    const std::string streamed = tempPath("vpsim_v3_streamed.vptrace");
    ASSERT_TRUE(writeTraceV3(whole, original, 256).isOk());

    TraceV3Writer writer;
    ASSERT_TRUE(writer.open(streamed, 256).isOk());
    // Deliberately ragged span sizes: block framing must not depend on
    // how append() batches arrive.
    std::size_t at = 0;
    const std::size_t steps[] = {1, 100, 17, 1000, 3};
    std::size_t step = 0;
    while (at < original.size()) {
        const std::size_t n =
            std::min(steps[step++ % 5], original.size() - at);
        ASSERT_TRUE(
            writer.append(TraceSpan(original.data() + at, n)).isOk());
        at += n;
    }
    ASSERT_TRUE(writer.finish().isOk());
    EXPECT_EQ(writer.recordsWritten(), original.size());

    EXPECT_EQ(slurp(whole), slurp(streamed));
    std::remove(whole.c_str());
    std::remove(streamed.c_str());
}

TEST(TraceV3, CompressesWellBelowTheV2Format)
{
    const auto original = captureWorkloadTrace("compress", 5000);
    const std::string v2 = tempPath("vpsim_v3_sizecheck_v2.vptrace");
    const std::string v3 = tempPath("vpsim_v3_sizecheck_v3.vptrace");
    ASSERT_TRUE(writeTrace(v2, original).isOk());
    ASSERT_TRUE(writeTraceV3(v3, original).isOk());
    const std::size_t v2_bytes = slurp(v2).size();
    const std::size_t v3_bytes = slurp(v3).size();
    EXPECT_LT(v3_bytes * 2, v2_bytes)
        << "delta/varint encoding should at least halve the 45-byte "
           "packed records (got "
        << v3_bytes << " vs " << v2_bytes << ")";
    std::remove(v2.c_str());
    std::remove(v3.c_str());
}

TEST(TraceV3, RejectsBadMagicVersionAndHeaderRot)
{
    const auto original = captureWorkloadTrace("go", 500);
    const std::string path = tempPath("vpsim_v3_header.vptrace");
    ASSERT_TRUE(writeTraceV3(path, original).isOk());
    const std::vector<unsigned char> good = slurp(path);
    std::vector<TraceRecord> out;

    std::vector<unsigned char> bad = good;
    bad[0] = 'J';
    spit(path, bad);
    Status got = readTraceV3(path, &out);
    ASSERT_FALSE(got.isOk());
    EXPECT_EQ(got.code(), StatusCode::kCorrupt);
    EXPECT_NE(got.message().find("bad trace file magic"),
              std::string::npos);

    bad = good;
    bad[4] = 2;
    spit(path, bad);
    got = readTraceV3(path, &out);
    ASSERT_FALSE(got.isOk());
    EXPECT_NE(got.message().find("unsupported trace file version 2"),
              std::string::npos);

    bad = good;
    bad[9] ^= 0x40; // records-per-block field: caught by header CRC.
    spit(path, bad);
    got = readTraceV3(path, &out);
    ASSERT_FALSE(got.isOk());
    EXPECT_NE(got.message().find("header checksum mismatch"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceV3, FlippedBlockFailsStrictAndIsQuarantinedBySalvage)
{
    const auto original = captureWorkloadTrace("compress", 4000);
    const std::string path = tempPath("vpsim_v3_flip.vptrace");
    ASSERT_TRUE(writeTraceV3(path, original, 512).isOk());

    std::vector<unsigned char> bytes = slurp(path);
    std::uint64_t records_before = 0;
    std::uint32_t block_count = 0;
    const std::size_t offset =
        blockOffset(bytes, 2, &records_before, &block_count);
    bytes[offset + v3BlockFrameBytes + 7] ^= 0x01; // payload bit rot
    spit(path, bytes);

    std::vector<TraceRecord> out;
    const Status strict = readTraceV3(path, &out);
    ASSERT_FALSE(strict.isOk());
    EXPECT_EQ(strict.code(), StatusCode::kCorrupt);
    EXPECT_NE(strict.message().find("block"), std::string::npos)
        << strict.message();

    BlockSalvageReport report;
    ASSERT_TRUE(readTraceV3(path, &out, /*salvage=*/true, &report)
                    .isOk());
    EXPECT_EQ(report.blocksQuarantined, 1u);
    EXPECT_EQ(report.recordsLost, block_count);
    ASSERT_EQ(out.size(), original.size() - block_count);

    // Salvage loses exactly the quarantined block: everything before
    // it and everything after it survives bit-for-bit.
    std::vector<TraceRecord> expected(
        original.begin(),
        original.begin() + static_cast<std::ptrdiff_t>(records_before));
    expected.insert(expected.end(),
                    original.begin() + static_cast<std::ptrdiff_t>(
                                           records_before + block_count),
                    original.end());
    expectSameRecords(out, expected);
    std::remove(path.c_str());
}

TEST(TraceV3, TruncationMidBlockSalvagesThePrefix)
{
    const auto original = captureWorkloadTrace("go", 4000);
    const std::string path = tempPath("vpsim_v3_trunc.vptrace");
    ASSERT_TRUE(writeTraceV3(path, original, 512).isOk());

    std::vector<unsigned char> bytes = slurp(path);
    std::uint64_t records_before = 0;
    const std::size_t offset = blockOffset(bytes, 3, &records_before);
    bytes.resize(offset + v3BlockFrameBytes + 5); // cut mid-payload
    spit(path, bytes);

    std::vector<TraceRecord> out;
    const Status strict = readTraceV3(path, &out);
    ASSERT_FALSE(strict.isOk());
    EXPECT_EQ(strict.code(), StatusCode::kCorrupt);

    BlockSalvageReport report;
    ASSERT_TRUE(readTraceV3(path, &out, /*salvage=*/true, &report)
                    .isOk());
    EXPECT_GE(report.blocksQuarantined, 1u);
    ASSERT_EQ(out.size(), records_before);
    expectSameRecords(
        out, std::vector<TraceRecord>(
                 original.begin(),
                 original.begin() +
                     static_cast<std::ptrdiff_t>(records_before)));
    std::remove(path.c_str());
}

TEST(TraceV3, TrailingGarbageFailsStrictButNotSalvage)
{
    const auto original = captureWorkloadTrace("go", 1000);
    const std::string path = tempPath("vpsim_v3_trailing.vptrace");
    ASSERT_TRUE(writeTraceV3(path, original, 256).isOk());
    std::vector<unsigned char> bytes = slurp(path);
    for (int i = 0; i < 100; ++i)
        bytes.push_back(static_cast<unsigned char>(i * 7));
    spit(path, bytes);

    std::vector<TraceRecord> out;
    const Status strict = readTraceV3(path, &out);
    ASSERT_FALSE(strict.isOk());
    EXPECT_NE(strict.message().find("trailing bytes"),
              std::string::npos)
        << strict.message();

    ASSERT_TRUE(readTraceV3(path, &out, /*salvage=*/true).isOk());
    expectSameRecords(out, original);
    std::remove(path.c_str());
}

TEST(TraceV3, InjectedBlockCrcFaultQuarantinesExactlyThatBlock)
{
    InjectorGuard guard;
    const auto original = captureWorkloadTrace("compress", 3000);
    const std::string path = tempPath("vpsim_v3_blockfault.vptrace");
    ASSERT_TRUE(writeTraceV3(path, original, 512).isOk());

    io::configureFaultInjection("block:2:block-crc");
    std::vector<TraceRecord> out;
    const Status strict = readTraceV3(path, &out);
    ASSERT_FALSE(strict.isOk());
    EXPECT_EQ(strict.code(), StatusCode::kCorrupt);
    EXPECT_NE(strict.message().find("(injected)"), std::string::npos)
        << strict.message();

    io::configureFaultInjection("block:2:block-crc");
    BlockSalvageReport report;
    ASSERT_TRUE(readTraceV3(path, &out, /*salvage=*/true, &report)
                    .isOk());
    EXPECT_EQ(report.blocksQuarantined, 1u);
    EXPECT_EQ(out.size(), original.size() - 512);
    std::remove(path.c_str());
}

TEST(TraceV3, InjectedCaptureEnospcFailsTheAppend)
{
    InjectorGuard guard;
    io::configureFaultInjection("capture:2:enospc-capture");
    const auto original = captureWorkloadTrace("go", 100);
    const std::string path = tempPath("vpsim_v3_capfault.vptrace");
    TraceV3Writer writer;
    ASSERT_TRUE(writer.open(path).isOk());
    ASSERT_TRUE(writer.append(TraceSpan(original)).isOk());
    const Status second = writer.append(TraceSpan(original));
    ASSERT_FALSE(second.isOk());
    EXPECT_EQ(second.code(), StatusCode::kIo);
    EXPECT_NE(second.message().find("No space left on device"),
              std::string::npos)
        << second.message();
    writer.close();
    std::remove(path.c_str());
}

TEST(TraceV3, SalvageRegistryAccumulatesAndResets)
{
    salvageRegistry().reset();
    BlockSalvageReport damage;
    damage.blocksQuarantined = 2;
    damage.recordsLost = 1024;
    damage.bytesSkipped = 99;
    salvageRegistry().note("a.vptrace", damage);
    salvageRegistry().note("b.vptrace", damage);
    salvageRegistry().note("clean.vptrace", BlockSalvageReport());

    const SalvageRegistry::Totals totals = salvageRegistry().totals();
    EXPECT_EQ(totals.files, 2u) << "clean files are not counted";
    EXPECT_EQ(totals.blocksQuarantined, 4u);
    EXPECT_EQ(totals.recordsLost, 2048u);
    EXPECT_EQ(totals.bytesSkipped, 198u);
    salvageRegistry().reset();
    EXPECT_EQ(salvageRegistry().totals().files, 0u);
}

TEST(StreamingSource, DeliversTheWholeTraceInOrder)
{
    const auto original = captureWorkloadTrace("compress", 5000);
    const std::string path = tempPath("vpsim_v3_stream.vptrace");
    ASSERT_TRUE(writeTraceV3(path, original, 512).isOk());

    StreamingTraceSource source;
    ASSERT_TRUE(source.open(path).isOk());
    std::vector<TraceRecord> got;
    TraceSpan block;
    while (source.nextBlock(block, 300)) {
        EXPECT_LE(block.size(), 300u);
        got.insert(got.end(), block.begin(), block.end());
    }
    EXPECT_TRUE(source.status().isOk());
    EXPECT_EQ(source.recordsDelivered(), original.size());
    expectSameRecords(got, original);

    // reset() rewinds to the first record.
    source.reset();
    ASSERT_TRUE(source.nextBlock(block, 8));
    ASSERT_EQ(block.size(), 8u);
    EXPECT_EQ(block[0].seq, original[0].seq);
    EXPECT_EQ(block[0].pc, original[0].pc);
    std::remove(path.c_str());
}

TEST(StreamingSource, ColumnarPathMatchesTheSpanPath)
{
    const auto original = captureWorkloadTrace("go", 3000);
    const std::string path = tempPath("vpsim_v3_stream_cols.vptrace");
    ASSERT_TRUE(writeTraceV3(path, original, 256).isOk());

    StreamingTraceSource source;
    ASSERT_TRUE(source.open(path).isOk());
    ASSERT_TRUE(source.supportsColumns());
    std::vector<TraceRecord> got;
    TraceColumns cols;
    while (source.nextColumns(cols, 100)) {
        for (std::size_t i = 0; i < cols.size(); ++i)
            got.push_back(cols.record(i));
    }
    EXPECT_TRUE(source.status().isOk());
    expectSameRecords(got, original);
    std::remove(path.c_str());
}

TEST(StreamingSource, SpansNeverCrossBlockBoundaries)
{
    const auto original = captureWorkloadTrace("go", 2000);
    const std::string path = tempPath("vpsim_v3_stream_bounds.vptrace");
    ASSERT_TRUE(writeTraceV3(path, original, 512).isOk());

    StreamingTraceSource source;
    ASSERT_TRUE(source.open(path).isOk());
    TraceSpan block;
    std::uint64_t seen = 0;
    while (source.nextBlock(block, TraceSpan::noLimit)) {
        EXPECT_LE(block.size(), 512u)
            << "a delivery must stay within one decoded block";
        seen += block.size();
    }
    EXPECT_EQ(seen, original.size());
    std::remove(path.c_str());
}

TEST(StreamingSource, SalvageModeSkipsDamageAndKeepsStreaming)
{
    const auto original = captureWorkloadTrace("compress", 4000);
    const std::string path = tempPath("vpsim_v3_stream_salvage.vptrace");
    ASSERT_TRUE(writeTraceV3(path, original, 512).isOk());
    std::vector<unsigned char> bytes = slurp(path);
    std::uint32_t block_count = 0;
    const std::size_t offset = blockOffset(bytes, 1, nullptr,
                                           &block_count);
    bytes[offset + v3BlockFrameBytes + 3] ^= 0x10;
    spit(path, bytes);

    StreamingTraceSource strict;
    ASSERT_TRUE(strict.open(path).isOk());
    TraceSpan block;
    std::uint64_t strict_records = 0;
    while (strict.nextBlock(block))
        strict_records += block.size();
    EXPECT_FALSE(strict.status().isOk())
        << "strict streaming must surface the damage";
    EXPECT_EQ(strict.status().code(), StatusCode::kCorrupt);

    StreamingTraceSource salvage;
    StreamingOptions options;
    options.salvage = true;
    ASSERT_TRUE(salvage.open(path, options).isOk());
    std::uint64_t salvaged_records = 0;
    while (salvage.nextBlock(block))
        salvaged_records += block.size();
    EXPECT_TRUE(salvage.status().isOk());
    EXPECT_EQ(salvaged_records, original.size() - block_count);
    EXPECT_EQ(salvage.salvageReport().blocksQuarantined, 1u);
    std::remove(path.c_str());
}

TEST(StreamingSource, MemoryBudgetDegradesMmapAndWindow)
{
    const auto original = captureWorkloadTrace("go", 4000);
    const std::string path = tempPath("vpsim_v3_stream_budget.vptrace");
    ASSERT_TRUE(writeTraceV3(path, original, 256).isOk());

    StreamingTraceSource source;
    StreamingOptions options;
    options.preferMapped = true;
    options.windowBlocks = 8;
    options.memBudgetBytes = 1; // Any real process is over this.
    ASSERT_TRUE(source.open(path, options).isOk());
    EXPECT_TRUE(source.degradedToBuffered())
        << "over budget, the mmap backend must be abandoned first";

    TraceSpan block;
    std::vector<TraceRecord> got;
    while (source.nextBlock(block))
        got.insert(got.end(), block.begin(), block.end());
    EXPECT_EQ(source.windowBlocks(), 1u)
        << "over budget, decode-ahead must shrink to a single block";
    EXPECT_TRUE(source.status().isOk());
    expectSameRecords(got, original);
    std::remove(path.c_str());
}

TEST(StreamingSource, MissingFileReadsAsExhaustedWithStickyError)
{
    StreamingTraceSource source;
    const Status opened =
        source.open(tempPath("vpsim_v3_stream_missing.vptrace"));
    ASSERT_FALSE(opened.isOk());
    TraceSpan block;
    EXPECT_FALSE(source.nextBlock(block));
    EXPECT_FALSE(source.status().isOk());
    EXPECT_EQ(source.status().code(), StatusCode::kIo);
}

} // namespace
} // namespace vpsim
