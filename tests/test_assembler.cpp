/**
 * @file
 * Tests for the text assembler: syntax coverage, label resolution,
 * pseudo-ops, error reporting, and end-to-end execution equivalence
 * with the ProgramBuilder.
 */

#include <gtest/gtest.h>

#include "vm/assembler.hpp"
#include "vm/interpreter.hpp"
#include "vm/program_builder.hpp"

namespace vpsim
{
namespace
{

Value
runAndRead(const std::string &source, RegIndex result_reg)
{
    Program program = assembleProgram(source);
    Interpreter interp(program, Memory{});
    const auto result = interp.run(100000);
    EXPECT_TRUE(result.halted);
    return interp.reg(result_reg);
}

TEST(Assembler, SumLoop)
{
    const Value sum = runAndRead(R"(
        # sum 1..10
                li   s0, 10
                li   s1, 0
        loop:
                add  s1, s1, s0
                addi s0, s0, -1
                bne  s0, zero, loop
                halt
    )", 13); // s1
    EXPECT_EQ(sum, 55u);
}

TEST(Assembler, AllAluMnemonics)
{
    const Value v = runAndRead(R"(
        li t0, 12
        li t1, 5
        add  s0, t0, t1   # 17
        sub  s1, t0, t1   # 7
        mul  s2, t0, t1   # 60
        div  s3, t0, t1   # 2
        rem  s4, t0, t1   # 2
        and  s5, t0, t1   # 4
        or   s6, t0, t1   # 13
        xor  s7, t0, t1   # 9
        add  a0, s0, s1
        add  a0, a0, s2
        add  a0, a0, s3
        add  a0, a0, s4
        add  a0, a0, s5
        add  a0, a0, s6
        add  a0, a0, s7
        halt
    )", 22); // a0
    EXPECT_EQ(v, 17u + 7 + 60 + 2 + 2 + 4 + 13 + 9);
}

TEST(Assembler, ImmediateForms)
{
    const Value v = runAndRead(R"(
        li   t0, 0x10      # hex
        addi t0, t0, -6    # negative
        slli t0, t0, 2     # 40
        ori  t0, t0, 1     # 41
        halt
    )", 3);
    EXPECT_EQ(v, 41u);
}

TEST(Assembler, MemoryOperands)
{
    const Value v = runAndRead(R"(
        li  s0, 0x10000
        li  t0, 1234
        st  t0, 8(s0)
        ld  t1, 8(s0)
        sb  t1, (s0)       # empty offset means 0
        lbu t2, 0(s0)
        add a0, t1, t2
        halt
    )", 22);
    EXPECT_EQ(v, 1234u + (1234u & 0xff));
}

TEST(Assembler, CallRetAndJumpTable)
{
    const Value v = runAndRead(R"(
                j    main
        double:
                add  a0, a0, a0
                ret
        main:
                li   a0, 21
                call double
                halt
    )", 22);
    EXPECT_EQ(v, 42u);
}

TEST(Assembler, LaAndJr)
{
    const Value v = runAndRead(R"(
        target:
                j    start
        finish:
                li   a0, 7
                halt
        start:
                la   t0, finish
                jr   t0
    )", 22);
    EXPECT_EQ(v, 7u);
}

TEST(Assembler, MultipleLabelsOneLine)
{
    const Value v = runAndRead(R"(
        a: b:   li s0, 3
                j done
        done:   halt
    )", 12);
    EXPECT_EQ(v, 3u);
}

TEST(Assembler, NumericRegisterNames)
{
    const Value v = runAndRead(R"(
        li   r5, 9
        mv   r6, r5
        halt
    )", 6);
    EXPECT_EQ(v, 9u);
}

TEST(Assembler, CommentsEverywhere)
{
    const Value v = runAndRead(R"(
        ; full-line comment
        li s0, 1   # trailing comment
        # another
        halt       ; done
    )", 12);
    EXPECT_EQ(v, 1u);
}

TEST(Assembler, MatchesBuilderOutput)
{
    // The same loop through both front ends must produce identical
    // instruction streams.
    ProgramBuilder b("ref");
    Label loop = b.newLabel();
    b.li(12, 4);
    b.bind(loop);
    b.addi(13, 13, 2);
    b.addi(12, 12, -1);
    b.bne(12, 0, loop);
    b.halt();
    Program reference = b.build();

    Program assembled = assembleProgram(R"(
            li   s0, 4
        loop:
            addi s1, s1, 2
            addi s0, s0, -1
            bne  s0, zero, loop
            halt
    )");
    ASSERT_EQ(assembled.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(assembled.at(i).disassemble(),
                  reference.at(i).disassemble())
            << "at instruction " << i;
    }
}

TEST(AssemblerErrors, UnknownMnemonic)
{
    EXPECT_EXIT(assembleProgram("frobnicate t0, t1\nhalt\n"),
                ::testing::ExitedWithCode(1), "line 1.*frobnicate");
}

TEST(AssemblerErrors, UnknownRegister)
{
    EXPECT_EXIT(assembleProgram("li q9, 4\nhalt\n"),
                ::testing::ExitedWithCode(1), "unknown register");
}

TEST(AssemblerErrors, UndefinedLabel)
{
    EXPECT_EXIT(assembleProgram("j nowhere\nhalt\n"),
                ::testing::ExitedWithCode(1), "undefined label");
}

TEST(AssemblerErrors, RedefinedLabel)
{
    EXPECT_EXIT(assembleProgram("x: nop\nx: halt\n"),
                ::testing::ExitedWithCode(1), "redefined");
}

TEST(AssemblerErrors, WrongOperandCount)
{
    EXPECT_EXIT(assembleProgram("add t0, t1\nhalt\n"),
                ::testing::ExitedWithCode(1), "expects 3 operands");
}

TEST(AssemblerErrors, BadImmediate)
{
    EXPECT_EXIT(assembleProgram("li t0, twelve\nhalt\n"),
                ::testing::ExitedWithCode(1), "bad immediate");
}

TEST(AssemblerErrors, BadMemoryOperand)
{
    EXPECT_EXIT(assembleProgram("ld t0, t1\nhalt\n"),
                ::testing::ExitedWithCode(1), "bad memory operand");
}

TEST(AssemblerErrors, EmptyProgram)
{
    EXPECT_EXIT(assembleProgram("# nothing here\n"),
                ::testing::ExitedWithCode(1), "empty program");
}

} // namespace
} // namespace vpsim
