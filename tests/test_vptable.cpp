/**
 * @file
 * Tests for the Section 4 hardware: address router (merging, bank
 * conflicts, priority), value distributor (stride expansion, Figure 4.2)
 * and the accounting invariants of the interleaved prediction table.
 */

#include <gtest/gtest.h>

#include "predictor/factory.hpp"
#include "vptable/interleaved_table.hpp"

namespace vpsim
{
namespace
{

/** A table whose classifier is pre-warmed on a stride sequence. */
std::unique_ptr<InterleavedVpTable>
warmedTable(const VpTableConfig &config, Addr pc, Value base,
            Value stride, int warmup = 8)
{
    auto table = std::make_unique<InterleavedVpTable>(
        makeClassifiedPredictor(PredictorKind::Stride), config);
    Value value = base;
    for (int i = 0; i < warmup; ++i) {
        const auto grants = table->processBundle({pc});
        table->update(pc, grants[0].prediction, value);
        value += stride;
    }
    return table;
}

TEST(Router, DistinctPcsInDistinctBanksAllGranted)
{
    VpTableConfig config;
    config.banks = 4;
    auto table = std::make_unique<InterleavedVpTable>(
        makeClassifiedPredictor(PredictorKind::Stride), config);
    // pcs map to banks (pc/4) % 4 = 0,1,2,3.
    const auto grants = table->processBundle({0x0, 0x4, 0x8, 0xc});
    for (const VpGrant &grant : grants)
        EXPECT_TRUE(grant.granted);
    EXPECT_EQ(table->deniedRequests(), 0u);
    EXPECT_EQ(table->accesses(), 4u);
}

TEST(Router, BankConflictDeniesLowerPriorityRequest)
{
    VpTableConfig config;
    config.banks = 4;
    config.portsPerBank = 1;
    auto table = std::make_unique<InterleavedVpTable>(
        makeClassifiedPredictor(PredictorKind::Stride), config);
    // 0x0 and 0x10 both map to bank 0; trace order gives 0x0 priority.
    const auto grants = table->processBundle({0x0, 0x10});
    EXPECT_TRUE(grants[0].granted);
    EXPECT_FALSE(grants[1].granted);
    EXPECT_EQ(table->deniedAccesses(), 1u);
    EXPECT_EQ(table->deniedRequests(), 1u);
}

TEST(Router, ExtraPortsResolveConflicts)
{
    VpTableConfig config;
    config.banks = 4;
    config.portsPerBank = 2;
    auto table = std::make_unique<InterleavedVpTable>(
        makeClassifiedPredictor(PredictorKind::Stride), config);
    const auto grants = table->processBundle({0x0, 0x10, 0x20});
    EXPECT_TRUE(grants[0].granted);
    EXPECT_TRUE(grants[1].granted);
    EXPECT_FALSE(grants[2].granted) << "third copy exceeds two ports";
}

TEST(Router, DuplicatePcsAreMergedNotDenied)
{
    VpTableConfig config;
    config.banks = 4;
    config.portsPerBank = 1;
    auto table = std::make_unique<InterleavedVpTable>(
        makeClassifiedPredictor(PredictorKind::Stride), config);
    // Three copies of one instruction (a loop fetched three times per
    // cycle): one merged access, not three conflicting ones.
    const auto grants = table->processBundle({0x0, 0x0, 0x0});
    EXPECT_TRUE(grants[0].granted);
    EXPECT_TRUE(grants[1].granted);
    EXPECT_TRUE(grants[2].granted);
    EXPECT_FALSE(grants[0].merged) << "lead copy is the real access";
    EXPECT_TRUE(grants[1].merged);
    EXPECT_TRUE(grants[2].merged);
    EXPECT_EQ(table->accesses(), 1u);
    EXPECT_EQ(table->mergedRequests(), 2u);
    EXPECT_EQ(table->deniedRequests(), 0u);
}

TEST(Distributor, ExpandsStrideSequenceForMergedCopies)
{
    // Figure 4.2: three iterations of a loop containing "i++" are
    // fetched together; the distributor must produce X, X+d, X+2d.
    VpTableConfig config;
    config.banks = 8;
    auto table = warmedTable(config, 0x100, 1000, 8);
    const auto grants = table->processBundle({0x100, 0x100, 0x100});
    ASSERT_TRUE(grants[0].prediction.predicted);
    ASSERT_TRUE(grants[1].prediction.predicted);
    ASSERT_TRUE(grants[2].prediction.predicted);
    const Value x = grants[0].prediction.value;
    EXPECT_EQ(grants[1].prediction.value, x + 8);
    EXPECT_EQ(grants[2].prediction.value, x + 16);
    EXPECT_EQ(table->distributorAdditions(), 2u)
        << "two non-lead copies with nonzero stride need additions";
}

TEST(Distributor, LastValueMergeNeedsNoArithmetic)
{
    VpTableConfig config;
    config.banks = 8;
    auto table = std::make_unique<InterleavedVpTable>(
        makeClassifiedPredictor(PredictorKind::LastValue), config);
    for (int i = 0; i < 8; ++i) {
        const auto grants = table->processBundle({0x100});
        table->update(0x100, grants[0].prediction, 77);
    }
    const auto grants = table->processBundle({0x100, 0x100, 0x100});
    EXPECT_EQ(grants[0].prediction.value, 77u);
    EXPECT_EQ(grants[1].prediction.value, 77u);
    EXPECT_EQ(grants[2].prediction.value, 77u);
    EXPECT_EQ(table->distributorAdditions(), 0u)
        << "the same value is broadcast, no additions (paper §4.2)";
}

TEST(Distributor, MixedBundleGrantsAndExpands)
{
    VpTableConfig config;
    config.banks = 2;
    auto table = warmedTable(config, 0x0, 50, 5);
    // Bundle: two copies of 0x0 (bank 0), one 0x4 (bank 1), one 0x8
    // (bank 0 -> conflicts with the 0x0 group and is denied).
    const auto grants = table->processBundle({0x0, 0x0, 0x4, 0x8});
    EXPECT_TRUE(grants[0].granted);
    EXPECT_TRUE(grants[1].granted);
    EXPECT_TRUE(grants[2].granted);
    EXPECT_FALSE(grants[3].granted);
    EXPECT_TRUE(grants[1].merged);
    EXPECT_FALSE(grants[2].merged);
}

TEST(Accounting, RouterNeverLosesRequests)
{
    VpTableConfig config;
    config.banks = 2;
    auto table = std::make_unique<InterleavedVpTable>(
        makeClassifiedPredictor(PredictorKind::Stride), config);
    std::uint64_t granted = 0;
    std::uint64_t total = 0;
    const std::vector<std::vector<Addr>> bundles = {
        {0x0, 0x0, 0x4, 0x8, 0xc, 0x10},
        {0x4, 0x4, 0x4},
        {0x0},
        {0x8, 0x10, 0x18, 0x20},
    };
    for (const auto &bundle : bundles) {
        const auto grants = table->processBundle(bundle);
        total += bundle.size();
        for (const VpGrant &grant : grants)
            granted += grant.granted ? 1 : 0;
    }
    // Conservation: every request is granted or denied, never lost.
    EXPECT_EQ(table->requests(), total);
    EXPECT_EQ(granted + table->deniedRequests(), total);
    // Groups: accesses = distinct pcs per bundle, bounded by requests.
    EXPECT_LE(table->accesses(), table->requests());
    EXPECT_EQ(table->mergedRequests(),
              table->requests() - table->accesses());
}

TEST(Accounting, SingleInstructionBundleIsOneAccess)
{
    auto table = std::make_unique<InterleavedVpTable>(
        makeClassifiedPredictor(PredictorKind::Stride), VpTableConfig{});
    table->processBundle({0x40});
    EXPECT_EQ(table->requests(), 1u);
    EXPECT_EQ(table->accesses(), 1u);
    EXPECT_EQ(table->mergedRequests(), 0u);
    EXPECT_EQ(table->deniedRequests(), 0u);
}

TEST(Accounting, EmptyBundleIsFree)
{
    auto table = std::make_unique<InterleavedVpTable>(
        makeClassifiedPredictor(PredictorKind::Stride), VpTableConfig{});
    const auto grants = table->processBundle({});
    EXPECT_TRUE(grants.empty());
    EXPECT_EQ(table->requests(), 0u);
}

TEST(Config, ZeroBanksDies)
{
    VpTableConfig config;
    config.banks = 0;
    EXPECT_EXIT((InterleavedVpTable{
                    makeClassifiedPredictor(PredictorKind::Stride),
                    config}),
                ::testing::ExitedWithCode(1), "bank count");
}

/** Property: across random bundles, grants preserve order and size. */
class RouterProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RouterProperty, GrantVectorMatchesBundle)
{
    VpTableConfig config;
    config.banks = GetParam();
    auto table = std::make_unique<InterleavedVpTable>(
        makeClassifiedPredictor(PredictorKind::Stride), config);
    std::vector<Addr> bundle;
    for (unsigned i = 0; i < 24; ++i)
        bundle.push_back((i * 12) % 64 * instBytes);
    const auto grants = table->processBundle(bundle);
    ASSERT_EQ(grants.size(), bundle.size());
    // Duplicate pcs must all share one fate (granted or denied).
    for (std::size_t i = 0; i < bundle.size(); ++i) {
        for (std::size_t j = i + 1; j < bundle.size(); ++j) {
            if (bundle[i] == bundle[j]) {
                EXPECT_EQ(grants[i].granted, grants[j].granted);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Banks, RouterProperty,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

} // namespace
} // namespace vpsim
