/**
 * @file
 * Unit tests for the mini ISA: opcode classification, operand usage
 * metadata, and disassembly.
 */

#include <gtest/gtest.h>

#include "isa/instruction.hpp"
#include "isa/opcodes.hpp"

namespace vpsim
{
namespace
{

TEST(OpcodeClass, AluOpsAreIntAlu)
{
    EXPECT_EQ(instClassOf(OpCode::Add), InstClass::IntAlu);
    EXPECT_EQ(instClassOf(OpCode::Xori), InstClass::IntAlu);
    EXPECT_EQ(instClassOf(OpCode::Lui), InstClass::IntAlu);
}

TEST(OpcodeClass, MulDivSplitOut)
{
    EXPECT_EQ(instClassOf(OpCode::Mul), InstClass::IntMul);
    EXPECT_EQ(instClassOf(OpCode::Div), InstClass::IntDiv);
    EXPECT_EQ(instClassOf(OpCode::Rem), InstClass::IntDiv);
}

TEST(OpcodeClass, MemoryOps)
{
    EXPECT_EQ(instClassOf(OpCode::Ld), InstClass::Load);
    EXPECT_EQ(instClassOf(OpCode::Lbu), InstClass::Load);
    EXPECT_EQ(instClassOf(OpCode::St), InstClass::Store);
    EXPECT_EQ(instClassOf(OpCode::Sb), InstClass::Store);
    EXPECT_TRUE(isMemory(OpCode::Ld));
    EXPECT_FALSE(isMemory(OpCode::Add));
}

TEST(OpcodeClass, ControlOps)
{
    EXPECT_EQ(instClassOf(OpCode::Beq), InstClass::Branch);
    EXPECT_EQ(instClassOf(OpCode::Jal), InstClass::Jump);
    EXPECT_EQ(instClassOf(OpCode::Jalr), InstClass::Jump);
    EXPECT_TRUE(isConditionalBranch(OpCode::Bge));
    EXPECT_FALSE(isConditionalBranch(OpCode::Jal));
    EXPECT_TRUE(isControl(OpCode::Jalr));
    EXPECT_FALSE(isControl(OpCode::Ld));
}

TEST(OpcodeMeta, DestWriters)
{
    EXPECT_TRUE(writesDest(OpCode::Add));
    EXPECT_TRUE(writesDest(OpCode::Ld));
    EXPECT_TRUE(writesDest(OpCode::Jal)) << "jal links";
    EXPECT_FALSE(writesDest(OpCode::St));
    EXPECT_FALSE(writesDest(OpCode::Beq));
    EXPECT_FALSE(writesDest(OpCode::Nop));
}

TEST(OpcodeMeta, SourceUsage)
{
    EXPECT_TRUE(readsSrc1(OpCode::Add));
    EXPECT_TRUE(readsSrc2(OpCode::Add));
    EXPECT_TRUE(readsSrc1(OpCode::Addi));
    EXPECT_FALSE(readsSrc2(OpCode::Addi));
    EXPECT_FALSE(readsSrc1(OpCode::Lui));
    EXPECT_TRUE(readsSrc2(OpCode::St)) << "stores read their data";
    EXPECT_TRUE(readsSrc1(OpCode::Jalr));
    EXPECT_FALSE(readsSrc1(OpCode::Jal));
}

TEST(OpcodeMeta, EveryOpcodeHasNameAndClass)
{
    for (unsigned i = 0; i < static_cast<unsigned>(OpCode::NumOpCodes);
         ++i) {
        const auto op = static_cast<OpCode>(i);
        EXPECT_FALSE(opcodeName(op).empty());
        // instClassOf must not panic for any valid opcode.
        (void)instClassOf(op);
    }
}

TEST(InstructionTest, ProducesValueRules)
{
    Instruction inst;
    inst.op = OpCode::Add;
    inst.rd = 3;
    EXPECT_TRUE(inst.producesValue());
    inst.rd = 0;
    EXPECT_FALSE(inst.producesValue()) << "r0 writes are discarded";
    inst.op = OpCode::St;
    inst.rd = 3;
    EXPECT_FALSE(inst.producesValue());
}

TEST(InstructionTest, DisassemblesAlu)
{
    Instruction inst;
    inst.op = OpCode::Add;
    inst.rd = 3;
    inst.rs1 = 1;
    inst.rs2 = 2;
    EXPECT_EQ(inst.disassemble(), "add r3, r1, r2");
}

TEST(InstructionTest, DisassemblesImmediate)
{
    Instruction inst;
    inst.op = OpCode::Addi;
    inst.rd = 5;
    inst.rs1 = 5;
    inst.imm = -1;
    EXPECT_EQ(inst.disassemble(), "addi r5, r5, -1");
}

TEST(InstructionTest, DisassemblesMemory)
{
    Instruction inst;
    inst.op = OpCode::Ld;
    inst.rd = 4;
    inst.rs1 = 2;
    inst.imm = 16;
    EXPECT_EQ(inst.disassemble(), "ld r4, 16(r2)");

    inst.op = OpCode::St;
    inst.rs2 = 7;
    EXPECT_EQ(inst.disassemble(), "st r7, 16(r2)");
}

TEST(InstructionTest, DisassemblesBranch)
{
    Instruction inst;
    inst.op = OpCode::Bne;
    inst.rs1 = 1;
    inst.rs2 = 0;
    inst.target = 12;
    EXPECT_EQ(inst.disassemble(), "bne r1, r0, @12");
}

} // namespace
} // namespace vpsim
