/**
 * @file
 * Tests for the fleet subsystem's deterministic building blocks: the
 * retry/backoff policy (cap, jitter bounds, give-up point — all pure
 * arithmetic, no sleeping), shard planning and bisection, the
 * content-addressed result store (round trip plus a corruption fuzzer
 * over truncated / bit-flipped / garbage files), the heartbeat pipe
 * framing, and the worker exit-code taxonomy.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancellation.hpp"
#include "common/rng.hpp"
#include "fleet/result_store.hpp"
#include "fleet/retry_policy.hpp"
#include "fleet/shard_planner.hpp"
#include "fleet/worker_handle.hpp"

namespace vpsim
{
namespace fleet
{
namespace
{

// ---------------------------------------------------------------------
// RetryPolicy

TEST(RetryPolicy, DelayDoublesThenSaturatesAtMaxDelay)
{
    RetryPolicy policy;
    policy.baseDelay = std::chrono::milliseconds(100);
    policy.maxDelay = std::chrono::milliseconds(1000);
    policy.jitterFrac = 0.0;

    Rng rng(1);
    EXPECT_EQ(policy.delay(1, rng).count(), 100);
    EXPECT_EQ(policy.delay(2, rng).count(), 200);
    EXPECT_EQ(policy.delay(3, rng).count(), 400);
    EXPECT_EQ(policy.delay(4, rng).count(), 800);
    EXPECT_EQ(policy.delay(5, rng).count(), 1000);
    // Far past the cap: the doubling loop must not overflow.
    EXPECT_EQ(policy.delay(64, rng).count(), 1000);
}

TEST(RetryPolicy, JitterStaysWithinDocumentedBounds)
{
    RetryPolicy policy;
    policy.baseDelay = std::chrono::milliseconds(200);
    policy.maxDelay = std::chrono::milliseconds(5000);
    policy.jitterFrac = 0.25;

    Rng rng(42);
    for (int attempt = 1; attempt <= 6; ++attempt) {
        // Un-jittered value for this attempt.
        RetryPolicy flat = policy;
        flat.jitterFrac = 0.0;
        Rng unused(0);
        const auto center = flat.delay(attempt, unused).count();
        const auto spread = static_cast<std::int64_t>(
            static_cast<double>(center) * policy.jitterFrac);
        for (int draw = 0; draw < 200; ++draw) {
            const auto ms = policy.delay(attempt, rng).count();
            EXPECT_GE(ms, center - spread)
                << "attempt " << attempt << " draw " << draw;
            EXPECT_LE(ms, center + spread)
                << "attempt " << attempt << " draw " << draw;
        }
    }
}

TEST(RetryPolicy, JitterIsDeterministicForASeed)
{
    RetryPolicy policy;
    Rng a(7);
    Rng b(7);
    for (int attempt = 1; attempt <= 8; ++attempt)
        EXPECT_EQ(policy.delay(attempt, a).count(),
                  policy.delay(attempt, b).count());
}

TEST(RetryPolicy, GivesUpExactlyAtMaxAttempts)
{
    RetryPolicy policy;
    policy.maxAttempts = 3;
    EXPECT_FALSE(policy.givesUpAfter(1));
    EXPECT_FALSE(policy.givesUpAfter(2));
    EXPECT_TRUE(policy.givesUpAfter(3));
    EXPECT_TRUE(policy.givesUpAfter(4));
}

// ---------------------------------------------------------------------
// ShardPlanner

TEST(ShardPlanner, PlanCarvesContiguousRunsIntoBoundedShards)
{
    std::vector<std::uint32_t> missing;
    for (std::uint32_t c = 0; c < 10; ++c)
        missing.push_back(c);
    const auto shards = ShardPlanner::plan(missing, 4);
    ASSERT_EQ(shards.size(), 3u);
    EXPECT_EQ(shards[0].id, 0u);
    EXPECT_EQ(shards[0].firstCell, 0u);
    EXPECT_EQ(shards[0].lastCell, 3u);
    EXPECT_EQ(shards[1].firstCell, 4u);
    EXPECT_EQ(shards[1].lastCell, 7u);
    EXPECT_EQ(shards[2].firstCell, 8u);
    EXPECT_EQ(shards[2].lastCell, 9u);
    EXPECT_EQ(shards[2].size(), 2u);
}

TEST(ShardPlanner, PlanStartsANewShardAtEveryGap)
{
    // A fragmented missing set, as after a resume.
    const std::vector<std::uint32_t> missing = {0, 1, 5, 6, 7, 9};
    const auto shards = ShardPlanner::plan(missing, 100);
    ASSERT_EQ(shards.size(), 3u);
    EXPECT_EQ(shards[0].firstCell, 0u);
    EXPECT_EQ(shards[0].lastCell, 1u);
    EXPECT_EQ(shards[1].firstCell, 5u);
    EXPECT_EQ(shards[1].lastCell, 7u);
    EXPECT_EQ(shards[2].firstCell, 9u);
    EXPECT_EQ(shards[2].lastCell, 9u);
}

TEST(ShardPlanner, PlanOfEmptyMissingSetIsEmpty)
{
    EXPECT_TRUE(ShardPlanner::plan({}, 8).empty());
}

TEST(ShardPlanner, BisectSplitsEvenAndOddShards)
{
    Shard even;
    even.firstCell = 4;
    even.lastCell = 7;
    const auto halves = ShardPlanner::bisect(even);
    EXPECT_EQ(halves.first.firstCell, 4u);
    EXPECT_EQ(halves.first.lastCell, 5u);
    EXPECT_EQ(halves.second.firstCell, 6u);
    EXPECT_EQ(halves.second.lastCell, 7u);

    Shard odd;
    odd.firstCell = 0;
    odd.lastCell = 2;
    const auto split = ShardPlanner::bisect(odd);
    EXPECT_EQ(split.first.firstCell, 0u);
    EXPECT_EQ(split.first.lastCell, 0u);
    EXPECT_EQ(split.second.firstCell, 1u);
    EXPECT_EQ(split.second.lastCell, 2u);
}

TEST(ShardPlanner, RepeatedBisectionIsolatesASingleCell)
{
    // Bisecting down from any range must terminate at size-1 shards
    // whose union is exactly the original range.
    Shard shard;
    shard.firstCell = 0;
    shard.lastCell = 12;
    std::vector<Shard> work = {shard};
    std::vector<std::uint32_t> singles;
    while (!work.empty()) {
        const Shard s = work.back();
        work.pop_back();
        if (s.size() == 1) {
            singles.push_back(s.firstCell);
            continue;
        }
        const auto halves = ShardPlanner::bisect(s);
        work.push_back(halves.first);
        work.push_back(halves.second);
    }
    std::sort(singles.begin(), singles.end());
    ASSERT_EQ(singles.size(), 13u);
    for (std::uint32_t c = 0; c < 13; ++c)
        EXPECT_EQ(singles[c], c);
}

// ---------------------------------------------------------------------
// ResultStore

class ResultStoreTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir = std::filesystem::temp_directory_path() /
            ("vpsim_fleet_test_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
        std::filesystem::remove_all(dir);
    }

    void TearDown() override { std::filesystem::remove_all(dir); }

    static ShardResult sampleResult(std::uint32_t first,
                                    std::uint32_t last)
    {
        ShardResult result;
        for (std::uint32_t c = first; c <= last; ++c)
            result.cells.emplace_back(c, 0.125 * c + 1.0);
        result.salvage.files = 1;
        result.salvage.blocksQuarantined = 2;
        result.salvage.recordsLost = 300;
        result.salvage.bytesSkipped = 4096;
        return result;
    }

    std::filesystem::path dir;
};

TEST_F(ResultStoreTest, StoreLoadRoundTripPreservesCellsAndSalvage)
{
    ResultStore store(dir.string(), 0xabcdefu);
    ASSERT_TRUE(store.status().isOk());
    const ShardResult in = sampleResult(10, 14);
    ASSERT_TRUE(store.store(10, 14, in).isOk());

    ShardResult out;
    ASSERT_TRUE(store.load(10, 14, &out).isOk());
    ASSERT_EQ(out.cells.size(), in.cells.size());
    for (std::size_t i = 0; i < in.cells.size(); ++i) {
        EXPECT_EQ(out.cells[i].first, in.cells[i].first);
        EXPECT_EQ(out.cells[i].second, in.cells[i].second);
    }
    EXPECT_EQ(out.salvage.files, in.salvage.files);
    EXPECT_EQ(out.salvage.blocksQuarantined,
              in.salvage.blocksQuarantined);
    EXPECT_EQ(out.salvage.recordsLost, in.salvage.recordsLost);
    EXPECT_EQ(out.salvage.bytesSkipped, in.salvage.bytesSkipped);
}

TEST_F(ResultStoreTest, RoundTripPreservesNaNCells)
{
    // Quarantined cells travel through result files as NaN; the hex
    // bit-pattern encoding must carry them exactly.
    ResultStore store(dir.string(), 1);
    ShardResult in;
    in.cells.emplace_back(0, std::nan(""));
    ASSERT_TRUE(store.store(0, 0, in).isOk());
    ShardResult out;
    ASSERT_TRUE(store.load(0, 0, &out).isOk());
    ASSERT_EQ(out.cells.size(), 1u);
    EXPECT_TRUE(std::isnan(out.cells[0].second));
}

TEST_F(ResultStoreTest, MergeAllIgnoresOtherFleetsAndMergesOwn)
{
    ResultStore mine(dir.string(), 111);
    ResultStore theirs(dir.string(), 222);
    ASSERT_TRUE(mine.store(0, 1, sampleResult(0, 1)).isOk());
    ASSERT_TRUE(mine.store(4, 5, sampleResult(4, 5)).isOk());
    ASSERT_TRUE(theirs.store(0, 9, sampleResult(0, 9)).isOk());

    std::map<std::uint32_t, double> cells;
    SalvageRegistry::Totals salvage;
    const auto report = mine.mergeAll(&cells, &salvage);
    EXPECT_EQ(report.filesMerged, 2u);
    EXPECT_EQ(report.cellsMerged, 4u);
    EXPECT_EQ(report.filesQuarantined, 0u);
    ASSERT_EQ(cells.size(), 4u);
    EXPECT_TRUE(cells.count(0) && cells.count(1) && cells.count(4) &&
                cells.count(5));
    // Two files, each carrying the sample salvage totals.
    EXPECT_EQ(salvage.files, 2u);
    EXPECT_EQ(salvage.recordsLost, 600u);
}

TEST_F(ResultStoreTest, RemoveAllDeletesOnlyThisFleet)
{
    ResultStore mine(dir.string(), 111);
    ResultStore theirs(dir.string(), 222);
    ASSERT_TRUE(mine.store(0, 1, sampleResult(0, 1)).isOk());
    ASSERT_TRUE(theirs.store(0, 1, sampleResult(0, 1)).isOk());
    EXPECT_EQ(mine.removeAll(), 1u);

    std::map<std::uint32_t, double> cells;
    SalvageRegistry::Totals salvage;
    EXPECT_EQ(mine.mergeAll(&cells, &salvage).filesMerged, 0u);
    EXPECT_EQ(theirs.mergeAll(&cells, &salvage).filesMerged, 1u);
}

TEST_F(ResultStoreTest, FuzzedCorruptionNeverYieldsWrongData)
{
    // The supervisor trusts load() blindly, so a damaged file must
    // either fail cleanly or parse to exactly what was stored — never
    // to different values. Fuzz the same corruption families the
    // trace-format fuzzer uses: truncation at every prefix class,
    // single bit flips everywhere, and appended garbage.
    ResultStore store(dir.string(), 0x5eedu);
    const ShardResult in = sampleResult(3, 9);
    ASSERT_TRUE(store.store(3, 9, in).isOk());
    const std::string path = store.pathFor(3, 9);

    std::string pristine;
    {
        std::ifstream file(path, std::ios::binary);
        ASSERT_TRUE(file.good());
        pristine.assign(std::istreambuf_iterator<char>(file),
                        std::istreambuf_iterator<char>());
    }
    ASSERT_FALSE(pristine.empty());

    const auto write_mutant = [&](const std::string &bytes) {
        std::ofstream file(path,
                           std::ios::binary | std::ios::trunc);
        file.write(bytes.data(),
                   static_cast<std::streamsize>(bytes.size()));
    };
    const auto check_mutant = [&](const std::string &label) {
        ShardResult out;
        const Status loaded = store.load(3, 9, &out);
        if (!loaded.isOk())
            return; // Clean rejection is the expected outcome.
        ASSERT_EQ(out.cells.size(), in.cells.size()) << label;
        for (std::size_t i = 0; i < in.cells.size(); ++i) {
            EXPECT_EQ(out.cells[i].first, in.cells[i].first) << label;
            EXPECT_EQ(out.cells[i].second, in.cells[i].second)
                << label;
        }
    };

    Rng rng(2026);
    // Truncations: one inside every 16-byte window of the file.
    for (std::size_t cut = 0; cut < pristine.size(); cut += 16) {
        write_mutant(pristine.substr(0, cut));
        check_mutant("truncated to " + std::to_string(cut));
    }
    // Bit flips: 200 random single-bit mutations.
    for (int trial = 0; trial < 200; ++trial) {
        std::string mutant = pristine;
        const auto pos = static_cast<std::size_t>(
            rng.nextBelow(mutant.size()));
        mutant[pos] = static_cast<char>(
            mutant[pos] ^ (1u << rng.nextBelow(8)));
        write_mutant(mutant);
        check_mutant("bit flip at " + std::to_string(pos));
    }
    // Appended garbage after a complete, valid file.
    write_mutant(pristine + "trailing junk\n0 deadbeef\n");
    check_mutant("appended garbage");

    // Restore and confirm the pristine bytes still load.
    write_mutant(pristine);
    ShardResult out;
    EXPECT_TRUE(store.load(3, 9, &out).isOk());
}

TEST_F(ResultStoreTest, MergeAllQuarantinesCorruptFiles)
{
    ResultStore store(dir.string(), 77);
    ASSERT_TRUE(store.store(0, 3, sampleResult(0, 3)).isOk());
    ASSERT_TRUE(store.store(4, 7, sampleResult(4, 7)).isOk());

    // Truncate one of the two files mid-body.
    const std::string victim = store.pathFor(4, 7);
    std::filesystem::resize_file(victim,
                                 std::filesystem::file_size(victim) /
                                     2);

    std::map<std::uint32_t, double> cells;
    SalvageRegistry::Totals salvage;
    const auto report = store.mergeAll(&cells, &salvage);
    EXPECT_EQ(report.filesMerged, 1u);
    EXPECT_EQ(report.cellsMerged, 4u);
    EXPECT_EQ(report.filesQuarantined, 1u);
    EXPECT_FALSE(std::filesystem::exists(victim));

    bool quarantined = false;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        if (entry.path().filename().string().rfind(".corrupt-", 0) ==
            0)
            quarantined = true;
    }
    EXPECT_TRUE(quarantined);
}

// ---------------------------------------------------------------------
// Heartbeat pipe framing

TEST(Heartbeat, WriterToReaderRoundTripKeepsLatestValue)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    HeartbeatWriter writer;
    HeartbeatReader reader;
    writer.attach(fds[1]);
    reader.attach(fds[0]);

    EXPECT_FALSE(reader.poll());
    writer.beat(1);
    writer.beat(2);
    writer.beat(40);
    EXPECT_TRUE(reader.poll());
    EXPECT_EQ(reader.latest(), 40u);
    EXPECT_FALSE(reader.poll()) << "drained; no new frames";
    EXPECT_EQ(reader.latest(), 40u);
}

TEST(Heartbeat, TornFrameIsHeldUntilItsBytesArrive)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    HeartbeatReader reader;
    reader.attach(fds[0]);

    // A frame is 8 little-endian bytes; deliver it split in two.
    const std::uint64_t value = 0x0102030405060708ull;
    unsigned char frame[8];
    for (int i = 0; i < 8; ++i)
        frame[i] = static_cast<unsigned char>(value >> (8 * i));
    ASSERT_EQ(::write(fds[1], frame, 5), 5);
    EXPECT_FALSE(reader.poll()) << "incomplete frame must not count";
    ASSERT_EQ(::write(fds[1], frame + 5, 3), 3);
    EXPECT_TRUE(reader.poll());
    EXPECT_EQ(reader.latest(), value);
    ::close(fds[1]);
}

// ---------------------------------------------------------------------
// Worker exit taxonomy

TEST(WorkerExit, ExitCodesRoundTripThroughClassification)
{
    const StatusCode codes[] = {StatusCode::kIo, StatusCode::kCorrupt,
                                StatusCode::kTimeout,
                                StatusCode::kInternal};
    for (const StatusCode code : codes) {
        const int exit_code = exitCodeForStatus(code);
        const pid_t pid = ::fork();
        if (pid == 0)
            ::_exit(exit_code);
        int status = 0;
        ::waitpid(pid, &status, 0);
        EXPECT_EQ(classifyExit(status), code)
            << "exit code " << exit_code;
    }
}

TEST(WorkerExit, CleanExitIsOk)
{
    const pid_t pid = ::fork();
    if (pid == 0)
        ::_exit(kWorkerExitOk);
    int status = 0;
    ::waitpid(pid, &status, 0);
    EXPECT_EQ(classifyExit(status), StatusCode::kOk);
}

TEST(WorkerExit, DeathBySignalIsInternal)
{
    const pid_t pid = ::fork();
    if (pid == 0) {
        ::raise(SIGKILL);
        ::_exit(0);
    }
    int status = 0;
    ::waitpid(pid, &status, 0);
    EXPECT_EQ(classifyExit(status), StatusCode::kInternal);
}

TEST(WorkerExit, UnknownExitCodeIsInternal)
{
    const pid_t pid = ::fork();
    if (pid == 0)
        ::_exit(97);
    int status = 0;
    ::waitpid(pid, &status, 0);
    EXPECT_EQ(classifyExit(status), StatusCode::kInternal);
}

} // namespace
} // namespace fleet
} // namespace vpsim
