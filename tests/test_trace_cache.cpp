/**
 * @file
 * Tests for the on-disk trace cache: hit/miss behaviour, key
 * sensitivity (any parameter or format-version change must change the
 * entry path), corrupt-entry rejection with a useful error, and the
 * atomic store-then-reload round trip.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/io.hpp"
#include "trace/trace_cache_store.hpp"
#include "trace/trace_v3.hpp"
#include "workloads/workload.hpp"

namespace vpsim
{
namespace
{

class TraceCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir = std::filesystem::temp_directory_path() /
            ("vpsim_cache_test_" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
        std::filesystem::remove_all(dir);
    }

    void TearDown() override { std::filesystem::remove_all(dir); }

    TraceCacheKey keyFor(const std::string &workload, std::uint64_t insts)
    {
        TraceCacheKey key;
        key.workload = workload;
        key.insts = insts;
        return key;
    }

    std::filesystem::path dir;
};

TEST_F(TraceCacheTest, MissThenStoreThenHit)
{
    TraceCacheStore cache(dir.string());
    const auto trace = captureWorkloadTrace("go", 1000);
    const TraceCacheKey key = keyFor("go", 1000);

    std::vector<TraceRecord> out;
    Status error = Status::ok();
    EXPECT_FALSE(cache.tryLoad(key, &out, &error));
    EXPECT_TRUE(error.isOk()) << "a plain miss is not an error";
    EXPECT_EQ(cache.misses(), 1u);

    ASSERT_TRUE(cache.store(key, trace).isOk());
    ASSERT_TRUE(cache.tryLoad(key, &out, &error));
    EXPECT_TRUE(error.isOk());
    EXPECT_EQ(cache.hits(), 1u);
    ASSERT_EQ(out.size(), trace.size());
    EXPECT_EQ(out.back().result, trace.back().result);
}

TEST_F(TraceCacheTest, EveryKeyFieldChangesThePath)
{
    TraceCacheStore cache(dir.string());
    const TraceCacheKey base = keyFor("go", 1000);
    const std::string base_path = cache.pathFor(base);

    TraceCacheKey k = base;
    k.workload = "gcc";
    EXPECT_NE(cache.pathFor(k), base_path);
    k = base;
    k.insts = 2000;
    EXPECT_NE(cache.pathFor(k), base_path);
    k = base;
    k.skip = 100;
    EXPECT_NE(cache.pathFor(k), base_path);
    k = base;
    k.scale = 2;
    EXPECT_NE(cache.pathFor(k), base_path);
    k = base;
    k.seed = 7;
    EXPECT_NE(cache.pathFor(k), base_path);
    k = base;
    k.formatVersion = base.formatVersion + 1;
    EXPECT_NE(cache.pathFor(k), base_path)
        << "format bumps must invalidate old entries";
}

TEST_F(TraceCacheTest, ScaleAndSeedMismatchMiss)
{
    TraceCacheStore cache(dir.string());
    const auto trace = captureWorkloadTrace("compress", 500);
    TraceCacheKey key = keyFor("compress", 500);
    key.scale = 2;
    key.seed = 42;
    ASSERT_TRUE(cache.store(key, trace).isOk());

    std::vector<TraceRecord> out;
    Status error = Status::ok();
    TraceCacheKey other = key;
    other.scale = 4;
    EXPECT_FALSE(cache.tryLoad(other, &out, &error));
    other = key;
    other.seed = 43;
    EXPECT_FALSE(cache.tryLoad(other, &out, &error));
    EXPECT_TRUE(cache.tryLoad(key, &out, &error));
}

TEST_F(TraceCacheTest, CorruptEntryIsAMissWithAnError)
{
    TraceCacheStore cache(dir.string());
    const TraceCacheKey key = keyFor("go", 300);
    const auto trace = captureWorkloadTrace("go", 300);
    ASSERT_TRUE(cache.store(key, trace).isOk());

    // Clobber the entry with garbage shorter than a header.
    const std::string path = cache.pathFor(key);
    std::FILE *file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    std::fputs("not a trace", file);
    std::fclose(file);

    std::vector<TraceRecord> out;
    Status error = Status::ok();
    EXPECT_FALSE(cache.tryLoad(key, &out, &error));
    EXPECT_FALSE(error.isOk());
    EXPECT_NE(error.message().find(path), std::string::npos)
        << "error must name the bad cache file: " << error.message();
    EXPECT_EQ(cache.misses(), 1u);

    // The canonical recovery: recapture and overwrite in place.
    ASSERT_TRUE(cache.store(key, trace).isOk());
    error = Status::ok();
    EXPECT_TRUE(cache.tryLoad(key, &out, &error));
    EXPECT_TRUE(error.isOk());
}

/** Reset the global fault injector even when a test fails mid-way. */
struct InjectorGuard
{
    ~InjectorGuard() { io::configureFaultInjection(""); }
};

TEST_F(TraceCacheTest, ChecksumCorruptionIsQuarantinedAndRecaptured)
{
    TraceCacheStore cache(dir.string());
    const TraceCacheKey key = keyFor("go", 400);
    const auto trace = captureWorkloadTrace("go", 400);
    ASSERT_TRUE(cache.store(key, trace).isOk());

    // Flip one payload bit: structurally valid, checksum-invalid.
    const std::string path = cache.pathFor(key);
    std::FILE *file = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(file, nullptr);
    std::fseek(file, 16 + 9, SEEK_SET);
    const int byte = std::fgetc(file);
    std::fseek(file, 16 + 9, SEEK_SET);
    std::fputc(byte ^ 0x01, file);
    std::fclose(file);

    std::vector<TraceRecord> out;
    Status error = Status::ok();
    EXPECT_FALSE(cache.tryLoad(key, &out, &error));
    ASSERT_FALSE(error.isOk());
    const std::string quarantine = cache.quarantinePathFor(key);
    EXPECT_NE(error.message().find("quarantined"), std::string::npos)
        << error.message();
    EXPECT_NE(error.message().find(quarantine), std::string::npos)
        << "error must name the quarantine destination: "
        << error.message();
    EXPECT_FALSE(std::filesystem::exists(path))
        << "the corrupt entry must be moved out of the lookup path";
    EXPECT_TRUE(std::filesystem::exists(quarantine))
        << "the corrupt bytes must be preserved for post-mortem";

    // Recapture: the store-and-reload cycle heals the entry.
    ASSERT_TRUE(cache.store(key, trace).isOk());
    error = Status::ok();
    ASSERT_TRUE(cache.tryLoad(key, &out, &error));
    EXPECT_TRUE(error.isOk());
    ASSERT_EQ(out.size(), trace.size());
    EXPECT_EQ(out.back().result, trace.back().result);
}

TEST_F(TraceCacheTest, ReapsOnlyStaleTemporaries)
{
    std::filesystem::create_directories(dir);
    const auto old_tmp = dir / "go-i400.vptrace.tmp.12345";
    const auto fresh_tmp = dir / "gcc-i400.vptrace.tmp.12346";
    for (const auto &p : {old_tmp, fresh_tmp}) {
        std::FILE *file = std::fopen(p.c_str(), "wb");
        ASSERT_NE(file, nullptr);
        std::fputs("partial", file);
        std::fclose(file);
    }
    std::filesystem::last_write_time(
        old_tmp, std::filesystem::file_time_type::clock::now() -
                     std::chrono::hours(2));

    TraceCacheStore cache(dir.string());
    EXPECT_EQ(cache.reapedTmpFiles(), 1u);
    EXPECT_FALSE(std::filesystem::exists(old_tmp))
        << "stale orphans must be deleted";
    EXPECT_TRUE(std::filesystem::exists(fresh_tmp))
        << "a live concurrent writer's temporary must survive";
}

TEST_F(TraceCacheTest, UnwritableDirectoryDegradesNotDies)
{
    InjectorGuard guard;
    // The constructor's write probe hits the injected ENOSPC, so the
    // store reports itself unusable instead of crashing later.
    io::configureFaultInjection("write:1:enospc");
    TraceCacheStore cache(dir.string());
    ASSERT_FALSE(cache.status().isOk());
    EXPECT_EQ(cache.status().code(), StatusCode::kIo);
    EXPECT_NE(cache.status().message().find("No space left"),
              std::string::npos)
        << cache.status().message();
}

TEST_F(TraceCacheTest, StoreRetriesTransientWriteFailures)
{
    TraceCacheStore cache(dir.string()); // probe before arming faults
    ASSERT_TRUE(cache.status().isOk());
    InjectorGuard guard;
    io::configureFaultInjection("write:2:eio");
    const auto trace = captureWorkloadTrace("go", 200);
    const TraceCacheKey key = keyFor("go", 200);
    ASSERT_TRUE(cache.store(key, trace).isOk())
        << "one EIO mid-write must be absorbed by the retry loop";

    io::configureFaultInjection("read:1:eio");
    std::vector<TraceRecord> out;
    Status error = Status::ok();
    EXPECT_TRUE(cache.tryLoad(key, &out, &error))
        << "one EIO on read must be absorbed by the retry loop: "
        << error.message();
    EXPECT_EQ(out.size(), trace.size());
}

TEST_F(TraceCacheTest, ExpiredQuarantineFilesAreGarbageCollected)
{
    std::filesystem::create_directories(dir);
    const auto old_corpse = dir / ".corrupt-go-i400.vptrace";
    const auto fresh_corpse = dir / ".corrupt-gcc-i400.vptrace";
    const auto old_entry = dir / "go-i400-k0-s1-d0-v2.vptrace";
    for (const auto &p : {old_corpse, fresh_corpse, old_entry}) {
        std::FILE *file = std::fopen(p.c_str(), "wb");
        ASSERT_NE(file, nullptr);
        std::fputs("evidence", file);
        std::fclose(file);
    }
    const auto two_hours_ago =
        std::filesystem::file_time_type::clock::now() -
        std::chrono::hours(2);
    std::filesystem::last_write_time(old_corpse, two_hours_ago);
    std::filesystem::last_write_time(old_entry, two_hours_ago);

    TraceCacheStore cache(dir.string(),
                          TraceCacheStore::defaultTmpReapAge,
                          std::chrono::hours(1));
    EXPECT_EQ(cache.gcRemovedQuarantineFiles(), 1u);
    EXPECT_FALSE(std::filesystem::exists(old_corpse))
        << "expired quarantine evidence must be collected";
    EXPECT_TRUE(std::filesystem::exists(fresh_corpse))
        << "recent evidence stays for post-mortem";
    EXPECT_TRUE(std::filesystem::exists(old_entry))
        << "the GC must never touch real cache entries, however old";
}

TEST_F(TraceCacheTest, QuarantineGcAgeZeroDisablesTheGc)
{
    std::filesystem::create_directories(dir);
    const auto corpse = dir / ".corrupt-go-i400.vptrace";
    std::FILE *file = std::fopen(corpse.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    std::fputs("evidence", file);
    std::fclose(file);
    std::filesystem::last_write_time(
        corpse, std::filesystem::file_time_type::clock::now() -
                    std::chrono::hours(24 * 365));

    TraceCacheStore cache(dir.string(),
                          TraceCacheStore::defaultTmpReapAge,
                          std::chrono::seconds(0));
    EXPECT_EQ(cache.gcRemovedQuarantineFiles(), 0u);
    EXPECT_TRUE(std::filesystem::exists(corpse))
        << "--cache-gc-days 0 must keep evidence forever";
}

TEST_F(TraceCacheTest, V3EntriesRoundTripThroughTheCache)
{
    TraceCacheStore cache(dir.string());
    const auto trace = captureWorkloadTrace("compress", 500);
    TraceCacheKey key = keyFor("compress", 500);
    key.formatVersion = traceFormatVersionV3;

    std::vector<TraceRecord> out;
    Status error = Status::ok();
    EXPECT_FALSE(cache.tryLoad(key, &out, &error));
    ASSERT_TRUE(cache.store(key, trace).isOk());
    ASSERT_TRUE(cache.tryLoad(key, &out, &error));
    EXPECT_TRUE(error.isOk());
    ASSERT_EQ(out.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); i += 41) {
        EXPECT_EQ(out[i].pc, trace[i].pc);
        EXPECT_EQ(out[i].nextPc, trace[i].nextPc);
        EXPECT_EQ(out[i].result, trace[i].result);
        EXPECT_EQ(out[i].op, trace[i].op);
    }

    // The entry really is block-framed v3 on disk (version byte 3).
    std::FILE *file = std::fopen(cache.pathFor(key).c_str(), "rb");
    ASSERT_NE(file, nullptr);
    unsigned char header[5] = {};
    ASSERT_EQ(std::fread(header, 1, sizeof(header), file),
              sizeof(header));
    std::fclose(file);
    EXPECT_EQ(header[4], 3u) << "v3 keys must store v3 bytes";
}

TEST_F(TraceCacheTest, SalvageModeLoadsADamagedV3EntryStrictQuarantines)
{
    TraceCacheStore strict(dir.string());
    const auto trace = captureWorkloadTrace("go", 400);
    ASSERT_GE(trace.size(), 300u);
    TraceCacheKey key = keyFor("go", 400);
    key.formatVersion = traceFormatVersionV3;
    // Plant a multi-block entry directly (small blocks), so one rotted
    // block cannot take the whole capture with it.
    const std::string path = strict.pathFor(key);
    ASSERT_TRUE(writeTraceV3(path, trace, 100).isOk());

    // Walk the frames to the second block and flip one payload byte.
    std::FILE *file = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(file, nullptr);
    unsigned char frame[12];
    std::fseek(file, 16, SEEK_SET); // first block frame
    ASSERT_EQ(std::fread(frame, 1, sizeof(frame), file), sizeof(frame));
    std::uint32_t payload0 = 0;
    std::uint32_t lost = 0;
    for (int i = 0; i < 4; ++i) {
        payload0 |= static_cast<std::uint32_t>(frame[8 + i]) << (8 * i);
    }
    const long second = 16 + 12 + static_cast<long>(payload0) + 4;
    std::fseek(file, second, SEEK_SET); // second block frame
    ASSERT_EQ(std::fread(frame, 1, sizeof(frame), file), sizeof(frame));
    ASSERT_EQ(std::memcmp(frame, "VPB3", 4), 0);
    for (int i = 0; i < 4; ++i)
        lost |= static_cast<std::uint32_t>(frame[4 + i]) << (8 * i);
    std::fseek(file, second + 12 + 5, SEEK_SET);
    const int byte = std::fgetc(file);
    std::fseek(file, second + 12 + 5, SEEK_SET);
    std::fputc(byte ^ 0x40, file);
    std::fclose(file);

    // Salvage mode: the damaged entry is a usable hit; exactly the
    // quarantined block's records are missing and the loss is tallied
    // in the process-global registry. The file stays in place.
    salvageRegistry().reset();
    TraceCacheStore salvaging(dir.string());
    salvaging.setSalvageBlocks(true);
    std::vector<TraceRecord> out;
    Status error = Status::ok();
    ASSERT_TRUE(salvaging.tryLoad(key, &out, &error))
        << error.message();
    EXPECT_TRUE(error.isOk());
    EXPECT_EQ(out.size(), trace.size() - lost);
    const SalvageRegistry::Totals totals = salvageRegistry().totals();
    EXPECT_EQ(totals.files, 1u);
    EXPECT_EQ(totals.blocksQuarantined, 1u);
    EXPECT_EQ(totals.recordsLost, lost);
    EXPECT_TRUE(std::filesystem::exists(path))
        << "salvage keeps the entry for later loads";

    // Strict mode (the default): same bytes are quarantined wholesale
    // and reported as a miss, preserving bit-exact figure outputs.
    error = Status::ok();
    EXPECT_FALSE(strict.tryLoad(key, &out, &error));
    EXPECT_FALSE(error.isOk());
    EXPECT_FALSE(std::filesystem::exists(path));
    EXPECT_TRUE(
        std::filesystem::exists(strict.quarantinePathFor(key)));
    salvageRegistry().reset();
}

TEST_F(TraceCacheTest, EntriesLiveInsideTheDirectory)
{
    TraceCacheStore cache(dir.string());
    const std::string path = cache.pathFor(keyFor("vortex", 1234));
    EXPECT_EQ(path.rfind(dir.string(), 0), 0u)
        << path << " not under " << dir;
    EXPECT_NE(path.find("vortex"), std::string::npos)
        << "entry names should be human-readable";
}

} // namespace
} // namespace vpsim
