/**
 * @file
 * Tests for the batched trace-delivery API: TraceSpan, TraceSource
 * block iteration, the deprecated next() shim, and materializeTrace.
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "trace/source.hpp"
#include "workloads/workload.hpp"

namespace vpsim
{
namespace
{

TraceRecord
syntheticRecord(std::uint64_t n)
{
    TraceRecord record;
    record.seq = n;
    record.pc = 0x1000 + 4 * n;
    record.result = n * 3 + 1;
    return record;
}

std::vector<TraceRecord>
syntheticTrace(std::size_t count)
{
    std::vector<TraceRecord> records;
    records.reserve(count);
    for (std::size_t n = 0; n < count; ++n)
        records.push_back(syntheticRecord(n));
    return records;
}

/**
 * A streaming source that recycles one internal block buffer per
 * delivery (the lifetime contract's worst case): spans from earlier
 * nextBlock() calls are clobbered by the next successful call, and the
 * backing store is never contiguous across blocks.
 */
class ChunkedTraceSource : public TraceSource
{
  public:
    ChunkedTraceSource(std::vector<TraceRecord> trace_records,
                       std::size_t chunk)
        : all(std::move(trace_records)), chunkSize(chunk)
    {}

    bool
    nextBlock(TraceSpan &out,
              std::size_t max_records = defaultBlockRecords) override
    {
        const std::size_t remaining = all.size() - position;
        if (remaining == 0) {
            out = TraceSpan();
            return false;
        }
        const std::size_t count =
            std::min({chunkSize, max_records, remaining});
        buffer.assign(all.begin() + position,
                      all.begin() + position + count);
        position += count;
        out = TraceSpan(buffer);
        return true;
    }

    void reset() override { position = 0; }

  private:
    std::vector<TraceRecord> all;
    std::vector<TraceRecord> buffer;
    std::size_t chunkSize;
    std::size_t position = 0;
};

TEST(TraceSpan, DefaultIsEmpty)
{
    TraceSpan span;
    EXPECT_TRUE(span.empty());
    EXPECT_EQ(span.size(), 0u);
    EXPECT_EQ(span.begin(), span.end());
}

TEST(TraceSpan, ViewsAVectorImplicitly)
{
    const auto records = syntheticTrace(5);
    const TraceSpan span = records;
    ASSERT_EQ(span.size(), records.size());
    EXPECT_EQ(span.data(), records.data());
    EXPECT_EQ(span.front().seq, 0u);
    EXPECT_EQ(span.back().seq, 4u);
    EXPECT_EQ(span[2].pc, records[2].pc);
}

TEST(TraceSpan, SubspanAndFirstSlice)
{
    const auto records = syntheticTrace(10);
    const TraceSpan span = records;
    const TraceSpan head = span.first(3);
    ASSERT_EQ(head.size(), 3u);
    EXPECT_EQ(head.data(), records.data());
    const TraceSpan middle = span.subspan(4, 2);
    ASSERT_EQ(middle.size(), 2u);
    EXPECT_EQ(middle.front().seq, 4u);
    const TraceSpan tail = span.subspan(7);
    ASSERT_EQ(tail.size(), 3u);
    EXPECT_EQ(tail.back().seq, 9u);
}

TEST(TraceSource, EmptyTraceExhaustsImmediately)
{
    VectorTraceSource source{std::vector<TraceRecord>{}};
    TraceSpan block;
    EXPECT_FALSE(source.nextBlock(block));
    EXPECT_TRUE(block.empty());
    TraceRecord record;
    // lint:allow trace-per-record — asserts the shim's exhaustion
    // contract; not a simulation loop.
    EXPECT_FALSE(source.next(record));
}

TEST(TraceSource, DeliversTailSmallerThanRequest)
{
    VectorTraceSource source{syntheticTrace(10)};
    TraceSpan block;
    ASSERT_TRUE(source.nextBlock(block, 4));
    EXPECT_EQ(block.size(), 4u);
    EXPECT_EQ(block.front().seq, 0u);
    ASSERT_TRUE(source.nextBlock(block, 4));
    EXPECT_EQ(block.size(), 4u);
    EXPECT_EQ(block.front().seq, 4u);
    ASSERT_TRUE(source.nextBlock(block, 4));
    EXPECT_EQ(block.size(), 2u);
    EXPECT_EQ(block.back().seq, 9u);
    // Exhaustion does not invalidate the previously delivered span.
    TraceSpan exhausted;
    EXPECT_FALSE(source.nextBlock(exhausted, 4));
    EXPECT_TRUE(exhausted.empty());
    EXPECT_EQ(block.size(), 2u);
    EXPECT_EQ(block.back().seq, 9u);
}

TEST(TraceSource, NoLimitDeliversEverythingContiguously)
{
    VectorTraceSource source{syntheticTrace(1000)};
    TraceSpan block;
    ASSERT_TRUE(source.nextBlock(block, TraceSpan::noLimit));
    EXPECT_EQ(block.size(), 1000u);
    EXPECT_FALSE(source.nextBlock(block, TraceSpan::noLimit));
}

TEST(TraceSource, ResetMidBlockRestartsFromTheTop)
{
    VectorTraceSource source{syntheticTrace(10)};
    TraceSpan block;
    ASSERT_TRUE(source.nextBlock(block, 4));
    ASSERT_TRUE(source.nextBlock(block, 4));
    source.reset();
    ASSERT_TRUE(source.nextBlock(block, TraceSpan::noLimit));
    EXPECT_EQ(block.size(), 10u);
    EXPECT_EQ(block.front().seq, 0u);
}

TEST(TraceSource, ShimMatchesSpanIterationRecordForRecord)
{
    const auto records = captureWorkloadTrace("compress", 3000);
    VectorTraceSource span_source{records};
    VectorTraceSource shim_source{records};

    std::vector<TraceRecord> via_span;
    TraceSpan block;
    while (span_source.nextBlock(block, 77))
        via_span.insert(via_span.end(), block.begin(), block.end());

    std::vector<TraceRecord> via_shim;
    TraceRecord record;
    // lint:allow trace-per-record — this test proves the deprecated
    // shim and the span iteration agree record for record.
    while (shim_source.next(record))
        via_shim.push_back(record);

    ASSERT_EQ(via_span.size(), records.size());
    ASSERT_EQ(via_shim.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(via_span[i].seq, via_shim[i].seq);
        EXPECT_EQ(via_span[i].pc, via_shim[i].pc);
        EXPECT_EQ(via_span[i].result, via_shim[i].result);
        EXPECT_EQ(via_span[i].rd, via_shim[i].rd);
    }
}

TEST(TraceSource, VectorSourceServesSpansZeroCopy)
{
    auto records = syntheticTrace(100);
    const TraceRecord *const data = records.data();
    VectorTraceSource source{std::move(records)};
    TraceSpan block;
    ASSERT_TRUE(source.nextBlock(block, 64));
    EXPECT_EQ(block.data(), data);
    ASSERT_TRUE(source.nextBlock(block, 64));
    EXPECT_EQ(block.data(), data + 64);
    EXPECT_EQ(block.size(), 36u);
}

TEST(TraceSource, RecordsAccessorIsIndependentOfTheCursor)
{
    VectorTraceSource source{syntheticTrace(20)};
    TraceSpan block;
    ASSERT_TRUE(source.nextBlock(block, 15));
    EXPECT_EQ(source.size(), 20u);
    EXPECT_EQ(source.records().size(), 20u);
    EXPECT_EQ(source.records().data(), block.data());
    EXPECT_EQ(source.at(19).seq, 19u);
}

TEST(TraceSource, BorrowedSourceViewsForeignStorage)
{
    const auto records = syntheticTrace(50);
    BorrowedTraceSource source{TraceSpan(records)};
    EXPECT_EQ(source.size(), 50u);
    TraceSpan block;
    ASSERT_TRUE(source.nextBlock(block, 30));
    EXPECT_EQ(block.data(), records.data());
    ASSERT_TRUE(source.nextBlock(block, 30));
    EXPECT_EQ(block.size(), 20u);
    source.reset();
    ASSERT_TRUE(source.nextBlock(block, TraceSpan::noLimit));
    EXPECT_EQ(block.size(), 50u);
}

TEST(TraceSource, MaterializeIsZeroCopyForContiguousSources)
{
    VectorTraceSource source{syntheticTrace(200)};
    std::vector<TraceRecord> storage;
    const TraceSpan span = materializeTrace(source, storage);
    EXPECT_EQ(span.size(), 200u);
    EXPECT_TRUE(storage.empty());
    EXPECT_EQ(span.data(), source.records().data());
}

TEST(TraceSource, MaterializeCopiesFromStreamingSources)
{
    const auto records = syntheticTrace(200);
    ChunkedTraceSource source{records, 32};
    std::vector<TraceRecord> storage;
    const TraceSpan span = materializeTrace(source, storage);
    ASSERT_EQ(span.size(), 200u);
    EXPECT_EQ(storage.size(), 200u);
    EXPECT_EQ(span.data(), storage.data());
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(span[i].seq, records[i].seq);
}

TEST(TraceSource, MaterializeEmptySourceYieldsEmptySpan)
{
    VectorTraceSource source{std::vector<TraceRecord>{}};
    std::vector<TraceRecord> storage;
    const TraceSpan span = materializeTrace(source, storage);
    EXPECT_TRUE(span.empty());
    EXPECT_TRUE(storage.empty());
}

} // namespace
} // namespace vpsim
