/**
 * @file
 * Tests for the fetch engines: taken-branch limits, misprediction
 * stall/resume, trace-cache fill, hit/miss paths, partial hits, and line
 * invariants.
 */

#include <gtest/gtest.h>

#include "bpred/branch_predictor.hpp"
#include "bpred/two_level.hpp"
#include "fetch/collapsing_buffer.hpp"
#include "fetch/sequential_fetch.hpp"
#include "fetch/trace_cache.hpp"
#include "vm/program_builder.hpp"
#include "vm/interpreter.hpp"
#include "workloads/regs.hpp"

namespace vpsim
{
namespace
{

using namespace regs;

/** A trace of a tight 4-instruction counted loop plus a tail. */
std::vector<TraceRecord>
loopTrace(int iterations)
{
    ProgramBuilder b("loop");
    Label loop = b.newLabel();
    b.li(s0, iterations);
    b.bind(loop);
    b.addi(s1, s1, 1);
    b.addi(s0, s0, -1);
    b.bne(s0, zero, loop);
    b.addi(s2, s1, 0);
    b.halt();
    Program prog = b.build();
    std::vector<TraceRecord> trace;
    Interpreter interp(prog, Memory{});
    interp.run(0, &trace);
    return trace;
}

std::vector<FetchedInst>
fetchAll(FetchEngine &engine, unsigned width, Cycle max_cycles,
         std::vector<unsigned> *bundle_sizes = nullptr)
{
    std::vector<FetchedInst> out;
    for (Cycle now = 1; now <= max_cycles && !engine.done(); ++now) {
        const std::size_t before = out.size();
        engine.fetch(now, width, out);
        if (bundle_sizes)
            bundle_sizes->push_back(
                static_cast<unsigned>(out.size() - before));
        // Resolve any misprediction immediately (oracle machine).
        if (!out.empty() && out.back().mispredicted)
            engine.branchResolved(out.back().record.seq, now);
    }
    return out;
}

TEST(SequentialFetch, FetchesWholeTraceInOrder)
{
    const auto trace = loopTrace(10);
    PerfectBranchPredictor oracle;
    SequentialFetch engine(trace, oracle, 0);
    const auto fetched = fetchAll(engine, 40, 1000);
    ASSERT_EQ(fetched.size(), trace.size());
    for (std::size_t i = 0; i < fetched.size(); ++i)
        EXPECT_EQ(fetched[i].record.seq, trace[i].seq);
    EXPECT_TRUE(engine.done());
}

TEST(SequentialFetch, RespectsWidth)
{
    const auto trace = loopTrace(20);
    PerfectBranchPredictor oracle;
    SequentialFetch engine(trace, oracle, 0);
    std::vector<unsigned> sizes;
    fetchAll(engine, 5, 1000, &sizes);
    for (const unsigned size : sizes)
        EXPECT_LE(size, 5u);
}

TEST(SequentialFetch, OneTakenBranchPerCycle)
{
    const auto trace = loopTrace(20);
    PerfectBranchPredictor oracle;
    SequentialFetch engine(trace, oracle, 1);
    std::vector<unsigned> sizes;
    fetchAll(engine, 40, 1000, &sizes);
    // Steady-state bundles must be one loop iteration (3 instructions,
    // ending at the taken bne).
    ASSERT_GE(sizes.size(), 10u);
    EXPECT_EQ(sizes[3], 3u);
    EXPECT_EQ(sizes[4], 3u);
}

TEST(SequentialFetch, TwoTakenBranchesDoubleTheBundle)
{
    const auto trace = loopTrace(20);
    PerfectBranchPredictor oracle;
    SequentialFetch engine(trace, oracle, 2);
    std::vector<unsigned> sizes;
    fetchAll(engine, 40, 1000, &sizes);
    EXPECT_EQ(sizes[3], 6u) << "two loop iterations per cycle";
}

TEST(SequentialFetch, UnlimitedTakenUsesFullWidth)
{
    const auto trace = loopTrace(100);
    PerfectBranchPredictor oracle;
    SequentialFetch engine(trace, oracle, 0);
    std::vector<unsigned> sizes;
    fetchAll(engine, 40, 1000, &sizes);
    EXPECT_EQ(sizes[1], 40u);
}

TEST(SequentialFetch, MispredictionStallsUntilResolved)
{
    const auto trace = loopTrace(8);
    TwoLevelPApPredictor bpred; // cold: first taken bne mispredicts
    SequentialFetch engine(trace, bpred, 0);

    std::vector<FetchedInst> out;
    engine.fetch(1, 40, out);
    ASSERT_FALSE(out.empty());
    EXPECT_TRUE(out.back().mispredicted)
        << "cold BTB mispredicts the first taken branch";
    const SeqNum bad = out.back().record.seq;
    const std::size_t after_first = out.size();

    // Fetch is stalled until the branch resolves.
    engine.fetch(2, 40, out);
    engine.fetch(3, 40, out);
    EXPECT_EQ(out.size(), after_first);

    engine.branchResolved(bad, 5);
    engine.fetch(5, 40, out);
    EXPECT_EQ(out.size(), after_first) << "resumes the cycle AFTER";
    engine.fetch(6, 40, out);
    EXPECT_GT(out.size(), after_first);
    EXPECT_GE(engine.mispredicts(), 1u);
}

TEST(SequentialFetch, ForeignResolutionIsIgnored)
{
    const auto trace = loopTrace(8);
    TwoLevelPApPredictor bpred;
    SequentialFetch engine(trace, bpred, 0);
    std::vector<FetchedInst> out;
    engine.fetch(1, 40, out);
    const SeqNum bad = out.back().record.seq;
    engine.branchResolved(bad + 999, 2); // not the pending branch
    const std::size_t size_before = out.size();
    engine.fetch(3, 40, out);
    EXPECT_EQ(out.size(), size_before);
    engine.branchResolved(bad, 3);
    engine.fetch(4, 40, out);
    EXPECT_GT(out.size(), size_before);
}

TEST(TraceCache, MissPathStopsAtTakenBranch)
{
    const auto trace = loopTrace(20);
    PerfectBranchPredictor oracle;
    TraceCacheFetch engine(trace, oracle, {});
    std::vector<FetchedInst> out;
    engine.fetch(1, 40, out); // li + first iteration, cold cache
    EXPECT_EQ(out.size(), 4u)
        << "miss path is contiguous up to the taken bne";
    EXPECT_EQ(engine.hits(), 0u);
}

TEST(TraceCache, HitsAfterFill)
{
    const auto trace = loopTrace(256);
    PerfectBranchPredictor oracle;
    TraceCacheFetch engine(trace, oracle, {});
    fetchAll(engine, 40, 10000);
    EXPECT_GT(engine.hits(), 0u);
    EXPECT_GT(engine.hitRate(), 0.5)
        << "a tight loop must hit once its lines are built";
    EXPECT_GT(engine.lineInstsDelivered(), 0u);
}

TEST(TraceCache, LinesCrossTakenBranches)
{
    // The whole point of a trace cache: one fetch cycle can deliver
    // multiple taken branches. Steady-state bundles must exceed one
    // basic block (3 insts).
    const auto trace = loopTrace(200);
    PerfectBranchPredictor oracle;
    TraceCacheFetch engine(trace, oracle, {});
    std::vector<unsigned> sizes;
    fetchAll(engine, 40, 10000, &sizes);
    unsigned best = 0;
    for (const unsigned size : sizes)
        best = std::max(best, size);
    EXPECT_GE(best, 12u) << "a line holds up to 6 basic blocks";
}

TEST(TraceCache, LineInvariantsHold)
{
    TraceCacheConfig config;
    config.maxLineInsts = 8;
    config.maxLineBlocks = 2;
    const auto trace = loopTrace(100);
    PerfectBranchPredictor oracle;
    TraceCacheFetch engine(trace, oracle, config);
    std::vector<unsigned> sizes;
    fetchAll(engine, 40, 10000, &sizes);
    for (const unsigned size : sizes)
        EXPECT_LE(size, 8u) << "no bundle can exceed the line size";
}

TEST(TraceCache, RespectsMachineBudget)
{
    const auto trace = loopTrace(100);
    PerfectBranchPredictor oracle;
    TraceCacheFetch engine(trace, oracle, {});
    std::vector<unsigned> sizes;
    fetchAll(engine, 7, 10000, &sizes);
    for (const unsigned size : sizes)
        EXPECT_LE(size, 7u);
}

TEST(TraceCache, DeliversCorrectPathOnly)
{
    const auto trace = loopTrace(64);
    PerfectBranchPredictor oracle;
    TraceCacheFetch engine(trace, oracle, {});
    const auto fetched = fetchAll(engine, 40, 10000);
    ASSERT_EQ(fetched.size(), trace.size());
    for (std::size_t i = 0; i < fetched.size(); ++i)
        EXPECT_EQ(fetched[i].record.pc, trace[i].pc);
}

TEST(TraceCache, StaleLineTruncatesWithoutPenaltyWhenPredicted)
{
    // Build a trace where a loop exits: the line built for the looping
    // path goes stale at the exit iteration. With a perfect predictor
    // the divergence is not a misprediction, so fetch truncates but
    // does not stall.
    const auto trace = loopTrace(6);
    PerfectBranchPredictor oracle;
    TraceCacheFetch engine(trace, oracle, {});
    const auto fetched = fetchAll(engine, 40, 10000);
    EXPECT_EQ(fetched.size(), trace.size());
    EXPECT_EQ(engine.mispredicts(), 0u);
}

TEST(CollapsingBuffer, CollapsesShortForwardBranch)
{
    // A taken forward branch whose target is in the same 32-byte line
    // must not cost a line window.
    ProgramBuilder b("cb");
    Label skip = b.newLabel();
    Label done = b.newLabel();
    b.li(s0, 1);
    b.beq(zero, zero, skip);   // always taken, +2 insts forward
    b.nop();
    b.bind(skip);
    b.li(s1, 2);
    b.j(done);
    b.bind(done);
    b.halt();
    Program prog = b.build();
    std::vector<TraceRecord> trace;
    Interpreter interp(prog, Memory{});
    interp.run(0, &trace);

    PerfectBranchPredictor oracle;
    CollapsingBufferFetch engine(trace, oracle, {});
    std::vector<FetchedInst> out;
    engine.fetch(1, 40, out);
    EXPECT_GE(engine.collapsedBranches(), 1u);
    EXPECT_GE(out.size(), 4u)
        << "fetch continued past the collapsed branch in one cycle";
}

TEST(CollapsingBuffer, TwoLinesPerCycle)
{
    const auto trace = loopTrace(40);
    PerfectBranchPredictor oracle;
    CollapsingBufferFetch engine(trace, oracle, {});
    const auto fetched = fetchAll(engine, 40, 10000);
    EXPECT_EQ(fetched.size(), trace.size());
}

TEST(CollapsingBuffer, BankConflictEndsBundle)
{
    CollapsingBufferConfig config;
    config.banks = 1; // every second line conflicts
    const auto trace = loopTrace(40);
    PerfectBranchPredictor oracle;
    CollapsingBufferFetch engine(trace, oracle, config);
    const auto fetched = fetchAll(engine, 40, 10000);
    EXPECT_EQ(fetched.size(), trace.size());
    EXPECT_GT(engine.bankConflicts(), 0u);
}

TEST(CollapsingBuffer, BadGeometryDies)
{
    const auto trace = loopTrace(4);
    PerfectBranchPredictor oracle;
    CollapsingBufferConfig config;
    config.lineBytes = 24;
    EXPECT_EXIT((CollapsingBufferFetch{trace, oracle, config}),
                ::testing::ExitedWithCode(1), "power of two");
}

TEST(TraceCache, BadGeometryDies)
{
    const auto trace = loopTrace(4);
    PerfectBranchPredictor oracle;
    TraceCacheConfig config;
    config.lines = 48; // not a power of two
    EXPECT_EXIT((TraceCacheFetch{trace, oracle, config}),
                ::testing::ExitedWithCode(1), "power of two");
}

} // namespace
} // namespace vpsim
