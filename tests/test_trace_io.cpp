/**
 * @file
 * Tests for the binary trace file format and trace statistics.
 */

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/io.hpp"
#include "trace/source.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"
#include "workloads/workload.hpp"

namespace vpsim
{
namespace
{

std::string
tempPath(const std::string &name)
{
    const char *dir = std::getenv("TMPDIR");
    return std::string(dir ? dir : "/tmp") + "/" + name;
}

TEST(TraceIo, RoundTripsARealTrace)
{
    const auto original = captureWorkloadTrace("compress", 5000);
    const std::string path = tempPath("vpsim_roundtrip.vptrace");
    writeTraceFile(path, original);
    const auto reloaded = readTraceFile(path);
    ASSERT_EQ(reloaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(reloaded[i].seq, original[i].seq);
        EXPECT_EQ(reloaded[i].pc, original[i].pc);
        EXPECT_EQ(reloaded[i].nextPc, original[i].nextPc);
        EXPECT_EQ(reloaded[i].memAddr, original[i].memAddr);
        EXPECT_EQ(reloaded[i].result, original[i].result);
        EXPECT_EQ(reloaded[i].op, original[i].op);
        EXPECT_EQ(reloaded[i].rd, original[i].rd);
        EXPECT_EQ(reloaded[i].rs1, original[i].rs1);
        EXPECT_EQ(reloaded[i].rs2, original[i].rs2);
        EXPECT_EQ(reloaded[i].taken, original[i].taken);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    const std::string path = tempPath("vpsim_empty.vptrace");
    writeTraceFile(path, {});
    EXPECT_TRUE(readTraceFile(path).empty());
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileDies)
{
    EXPECT_EXIT(readTraceFile(tempPath("vpsim_nonexistent.vptrace")),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceIo, BadMagicDies)
{
    const std::string path = tempPath("vpsim_badmagic.vptrace");
    std::FILE *file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    const char junk[16] = {'J', 'U', 'N', 'K'};
    std::fwrite(junk, 1, sizeof(junk), file);
    std::fclose(file);
    EXPECT_EXIT(readTraceFile(path), ::testing::ExitedWithCode(1),
                "bad trace file magic");
    std::remove(path.c_str());
}

TEST(TraceIo, TruncatedFileDies)
{
    const std::string path = tempPath("vpsim_trunc.vptrace");
    const auto trace = captureWorkloadTrace("go", 100);
    writeTraceFile(path, trace);
    // Chop the file in half.
    std::FILE *file = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(file, nullptr);
    std::fseek(file, 0, SEEK_END);
    const long size = std::ftell(file);
    std::fclose(file);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
    EXPECT_EXIT(readTraceFile(path), ::testing::ExitedWithCode(1),
                "truncated");
    std::remove(path.c_str());
}

TEST(TraceIo, StatusApiRoundTrips)
{
    const auto original = captureWorkloadTrace("go", 2000);
    const std::string path = tempPath("vpsim_status_roundtrip.vptrace");
    const Status written = writeTrace(path, original);
    ASSERT_TRUE(written.isOk()) << written.message();
    std::vector<TraceRecord> reloaded;
    const Status read = readTrace(path, &reloaded);
    ASSERT_TRUE(read.isOk()) << read.message();
    ASSERT_EQ(reloaded.size(), original.size());
    EXPECT_EQ(reloaded.back().pc, original.back().pc);
    std::remove(path.c_str());
}

TEST(TraceIo, StatusApiNamesTheMissingFile)
{
    const std::string path = tempPath("vpsim_status_missing.vptrace");
    std::vector<TraceRecord> out;
    const Status read = readTrace(path, &out);
    ASSERT_FALSE(read.isOk());
    EXPECT_NE(read.message().find(path), std::string::npos)
        << "error must name the offending file: " << read.message();
}

TEST(TraceIo, StatusApiRejectsTrailingBytes)
{
    const std::string path = tempPath("vpsim_status_trailing.vptrace");
    const auto trace = captureWorkloadTrace("go", 100);
    ASSERT_TRUE(writeTrace(path, trace).isOk());
    std::FILE *file = std::fopen(path.c_str(), "ab");
    ASSERT_NE(file, nullptr);
    const char junk = 'X';
    std::fwrite(&junk, 1, 1, file);
    std::fclose(file);
    std::vector<TraceRecord> out;
    const Status read = readTrace(path, &out);
    ASSERT_FALSE(read.isOk());
    EXPECT_NE(read.message().find("trailing"), std::string::npos)
        << read.message();
    std::remove(path.c_str());
}

TEST(TraceIo, StatusApiRejectsBadMagic)
{
    const std::string path = tempPath("vpsim_status_badmagic.vptrace");
    std::FILE *file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    const char junk[16] = {'J', 'U', 'N', 'K'};
    std::fwrite(junk, 1, sizeof(junk), file);
    std::fclose(file);
    std::vector<TraceRecord> out;
    const Status read = readTrace(path, &out);
    ASSERT_FALSE(read.isOk());
    EXPECT_NE(read.message().find("magic"), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIo, VersionMismatchReportsFoundAndExpected)
{
    const std::string path = tempPath("vpsim_version.vptrace");
    const auto trace = captureWorkloadTrace("go", 50);
    writeTraceFile(path, trace);
    // Patch the version byte to a stale value.
    std::FILE *file = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(file, nullptr);
    std::fseek(file, 4, SEEK_SET);
    std::fputc(1, file);
    std::fclose(file);

    std::vector<TraceRecord> out;
    const Status read = readTrace(path, &out);
    ASSERT_FALSE(read.isOk());
    EXPECT_EQ(read.code(), StatusCode::kCorrupt);
    EXPECT_NE(read.message().find("version 1"), std::string::npos)
        << "must report the version found: " << read.message();
    EXPECT_NE(read.message().find(
                  "expected " + std::to_string(traceFormatVersion)),
              std::string::npos)
        << "must report the version expected: " << read.message();
    std::remove(path.c_str());
}

TEST(TraceIo, ChecksumCatchesFlippedPayloadByte)
{
    const std::string path = tempPath("vpsim_bitflip.vptrace");
    const auto trace = captureWorkloadTrace("go", 200);
    writeTraceFile(path, trace);
    // Flip one bit inside the first record's seq field — a corruption
    // that no structural check (magic, version, opcode range, length)
    // can see. Only the checksum footer catches it.
    std::FILE *file = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(file, nullptr);
    std::fseek(file, 16 + 3, SEEK_SET);
    const int original = std::fgetc(file);
    std::fseek(file, 16 + 3, SEEK_SET);
    std::fputc(original ^ 0x40, file);
    std::fclose(file);

    std::vector<TraceRecord> out;
    const Status read = readTrace(path, &out);
    ASSERT_FALSE(read.isOk());
    EXPECT_EQ(read.code(), StatusCode::kCorrupt);
    EXPECT_NE(read.message().find("checksum mismatch"),
              std::string::npos)
        << read.message();
    EXPECT_NE(read.message().find(path), std::string::npos);
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFooterIsCorrupt)
{
    const std::string path = tempPath("vpsim_nofooter.vptrace");
    const auto trace = captureWorkloadTrace("go", 100);
    writeTraceFile(path, trace);
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    ASSERT_FALSE(ec);
    ASSERT_EQ(truncate(path.c_str(),
                       static_cast<off_t>(size - 2)), 0);
    std::vector<TraceRecord> out;
    const Status read = readTrace(path, &out);
    ASSERT_FALSE(read.isOk());
    EXPECT_EQ(read.code(), StatusCode::kCorrupt);
    EXPECT_NE(read.message().find("footer"), std::string::npos)
        << read.message();
    std::remove(path.c_str());
}

/**
 * Forces readTrace() onto its buffered-read fallback by arming the
 * fault injector with a clause that never fires: the mapped fast path
 * is gated on the injector being inactive. Restores a clean injector
 * on scope exit.
 */
struct BufferedReadScope
{
    BufferedReadScope()
    {
        io::configureFaultInjection("flush:1000000:eio");
    }
    ~BufferedReadScope() { io::configureFaultInjection(""); }
};

TEST(TraceIo, MappedAndBufferedReadsAgree)
{
    const auto original = captureWorkloadTrace("li", 3000);
    const std::string path = tempPath("vpsim_mmap_parity.vptrace");
    writeTraceFile(path, original);

    std::vector<TraceRecord> via_mapped;
    ASSERT_TRUE(readTrace(path, &via_mapped).isOk());

    std::vector<TraceRecord> via_buffered;
    {
        BufferedReadScope buffered;
        ASSERT_TRUE(readTrace(path, &via_buffered).isOk());
    }

    ASSERT_EQ(via_mapped.size(), original.size());
    ASSERT_EQ(via_mapped.size(), via_buffered.size());
    for (std::size_t i = 0; i < via_mapped.size(); ++i) {
        EXPECT_EQ(via_mapped[i].seq, via_buffered[i].seq);
        EXPECT_EQ(via_mapped[i].pc, via_buffered[i].pc);
        EXPECT_EQ(via_mapped[i].result, via_buffered[i].result);
        EXPECT_EQ(via_mapped[i].op, via_buffered[i].op);
        EXPECT_EQ(via_mapped[i].taken, via_buffered[i].taken);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, MappedAndBufferedCorruptionMessagesAgree)
{
    // Every corruption class must fail identically on both read paths:
    // the trace cache quarantines based on code and message, so the
    // fast path may not drift. Each corruptor mutates a fresh copy of
    // a valid trace file.
    const auto trace = captureWorkloadTrace("go", 120);
    const std::string path = tempPath("vpsim_mmap_corrupt.vptrace");
    const auto corrupt_then_compare = [&](auto &&corruptor) {
        writeTraceFile(path, trace);
        corruptor(path);

        std::vector<TraceRecord> out;
        const Status mapped = readTrace(path, &out);
        Status buffered = Status::ok();
        {
            BufferedReadScope scope;
            buffered = readTrace(path, &out);
        }
        ASSERT_FALSE(mapped.isOk());
        EXPECT_EQ(mapped.code(), buffered.code());
        EXPECT_EQ(mapped.message(), buffered.message());
        std::remove(path.c_str());
    };

    // Payload bit flip -> checksum mismatch.
    corrupt_then_compare([](const std::string &p) {
        std::FILE *file = std::fopen(p.c_str(), "rb+");
        ASSERT_NE(file, nullptr);
        std::fseek(file, 16 + 5, SEEK_SET);
        const int byte = std::fgetc(file);
        std::fseek(file, 16 + 5, SEEK_SET);
        std::fputc(byte ^ 0x10, file);
        std::fclose(file);
    });
    // Truncation mid-record -> per-record truncated message.
    corrupt_then_compare([](const std::string &p) {
        std::error_code ec;
        const auto size = std::filesystem::file_size(p, ec);
        ASSERT_FALSE(ec);
        ASSERT_EQ(truncate(p.c_str(), static_cast<off_t>(size / 2)), 0);
    });
    // Missing footer.
    corrupt_then_compare([](const std::string &p) {
        std::error_code ec;
        const auto size = std::filesystem::file_size(p, ec);
        ASSERT_FALSE(ec);
        ASSERT_EQ(truncate(p.c_str(), static_cast<off_t>(size - 3)), 0);
    });
    // Trailing junk.
    corrupt_then_compare([](const std::string &p) {
        std::FILE *file = std::fopen(p.c_str(), "ab");
        ASSERT_NE(file, nullptr);
        std::fwrite("??", 1, 2, file);
        std::fclose(file);
    });
    // Bad magic.
    corrupt_then_compare([](const std::string &p) {
        std::FILE *file = std::fopen(p.c_str(), "rb+");
        ASSERT_NE(file, nullptr);
        std::fwrite("JUNK", 1, 4, file);
        std::fclose(file);
    });
    // Stale version byte.
    corrupt_then_compare([](const std::string &p) {
        std::FILE *file = std::fopen(p.c_str(), "rb+");
        ASSERT_NE(file, nullptr);
        std::fseek(file, 4, SEEK_SET);
        std::fputc(1, file);
        std::fclose(file);
    });
    // Header undercounts: extra whole records read as trailing bytes
    // or a checksum mismatch, identically on both paths.
    corrupt_then_compare([](const std::string &p) {
        std::FILE *file = std::fopen(p.c_str(), "rb+");
        ASSERT_NE(file, nullptr);
        std::fseek(file, 8, SEEK_SET);
        std::fputc(10, file); // count := 10 (file holds 120 records)
        std::fclose(file);
    });
}

TEST(TraceStatsTest, CountsAreConsistent)
{
    const auto trace = captureWorkloadTrace("gcc", 20000);
    const TraceStats stats = computeTraceStats(trace);
    EXPECT_EQ(stats.totalInsts, trace.size());
    EXPECT_LE(stats.takenCondBranches, stats.condBranches);
    EXPECT_GT(stats.valueProducers, 0u);
    const std::uint64_t classified = stats.aluOps + stats.mulDivOps +
                                     stats.loads + stats.stores +
                                     stats.condBranches + stats.jumps;
    EXPECT_LE(classified, stats.totalInsts);
    EXPECT_GE(classified, stats.totalInsts * 9 / 10)
        << "nops/halts are rare";
}

TEST(TraceStatsTest, ReportMentionsName)
{
    const auto trace = captureWorkloadTrace("perl", 2000);
    const TraceStats stats = computeTraceStats(trace);
    EXPECT_NE(stats.report("perl").find("perl"), std::string::npos);
}

TEST(SliceTrace, SkipsAndRenumbers)
{
    const auto full = captureWorkloadTrace("li", 1000);
    const auto sliced = sliceTrace(full, 300);
    ASSERT_EQ(sliced.size(), 700u);
    for (std::size_t i = 0; i < sliced.size(); ++i) {
        EXPECT_EQ(sliced[i].seq, i) << "dense renumbering";
        EXPECT_EQ(sliced[i].pc, full[300 + i].pc);
        EXPECT_EQ(sliced[i].result, full[300 + i].result);
    }
}

TEST(SliceTrace, LengthBounds)
{
    const auto full = captureWorkloadTrace("go", 500);
    EXPECT_EQ(sliceTrace(full, 100, 50).size(), 50u);
    EXPECT_EQ(sliceTrace(full, 450, 500).size(), 50u)
        << "length clamps at the end";
    EXPECT_TRUE(sliceTrace(full, 1000).empty());
    EXPECT_EQ(sliceTrace(full, 0).size(), full.size());
}

TEST(SliceTrace, AnalysesRunOnSlices)
{
    // A slice must be a valid input for the DID machinery (dense seqs).
    const auto full = captureWorkloadTrace("perl", 4000);
    const auto sliced = sliceTrace(full, 1000);
    for (std::size_t i = 0; i + 1 < sliced.size(); ++i)
        ASSERT_EQ(sliced[i].nextPc, sliced[i + 1].pc);
}

TEST(TraceStatsTest, EmptyTrace)
{
    const TraceStats stats = computeTraceStats({});
    EXPECT_EQ(stats.totalInsts, 0u);
    EXPECT_DOUBLE_EQ(stats.takenRate, 0.0);
}

TEST(TraceIo, SpanIterationMatchesNextAfterRoundTrip)
{
    const auto original = captureWorkloadTrace("go", 4000);
    const std::string path = tempPath("vpsim_span_roundtrip.vptrace");
    writeTraceFile(path, original);
    const auto reloaded = readTraceFile(path);
    std::remove(path.c_str());
    ASSERT_EQ(reloaded.size(), original.size());

    // The reloaded trace must deliver identically through both halves
    // of the TraceSource API: batched spans and the deprecated
    // per-record shim, record for record.
    VectorTraceSource span_source{reloaded};
    VectorTraceSource shim_source{reloaded};
    std::size_t index = 0;
    TraceSpan block;
    TraceRecord from_shim;
    while (span_source.nextBlock(block, 123)) {
        for (const TraceRecord &from_span : block) {
            // lint:allow trace-per-record — shim/span cross-check.
            ASSERT_TRUE(shim_source.next(from_shim));
            ASSERT_LT(index, original.size());
            EXPECT_EQ(from_span.seq, from_shim.seq);
            EXPECT_EQ(from_span.pc, original[index].pc);
            EXPECT_EQ(from_shim.pc, original[index].pc);
            EXPECT_EQ(from_span.result, original[index].result);
            EXPECT_EQ(from_shim.taken, original[index].taken);
            ++index;
        }
    }
    // lint:allow trace-per-record — asserts the shim's exhaustion
    // contract; not a simulation loop.
    EXPECT_FALSE(shim_source.next(from_shim));
    EXPECT_EQ(index, original.size());
}

TEST(TraceStatsTest, SourceOverloadMatchesSpanOverload)
{
    const auto trace = captureWorkloadTrace("compress", 3000);
    const TraceStats from_span = computeTraceStats(trace);
    VectorTraceSource source{trace};
    const TraceStats from_source = computeTraceStats(source);
    EXPECT_EQ(from_span.totalInsts, from_source.totalInsts);
    EXPECT_EQ(from_span.distinctPcs, from_source.distinctPcs);
    EXPECT_EQ(from_span.valueProducers, from_source.valueProducers);
    EXPECT_DOUBLE_EQ(from_span.takenRate, from_source.takenRate);
    EXPECT_DOUBLE_EQ(from_span.avgBasicBlock,
                     from_source.avgBasicBlock);
}

} // namespace
} // namespace vpsim
