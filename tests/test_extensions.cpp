/**
 * @file
 * Tests for the library extensions beyond the paper's evaluated
 * configuration: the FCM predictor ([22]), profile-guided hints ([9]),
 * the branch address cache front end ([28]), and the instruction cache
 * model.
 */

#include <gtest/gtest.h>

#include "bpred/branch_predictor.hpp"
#include "core/pipeline_machine.hpp"
#include "fetch/branch_address_cache.hpp"
#include "fetch/icache.hpp"
#include "fetch/sequential_fetch.hpp"
#include "predictor/factory.hpp"
#include "predictor/fcm.hpp"
#include "predictor/stride.hpp"
#include "predictor/profile.hpp"
#include "vm/interpreter.hpp"
#include "vm/program_builder.hpp"
#include "vptable/interleaved_table.hpp"
#include "workloads/regs.hpp"
#include "workloads/workload.hpp"

namespace vpsim
{
namespace
{

using namespace regs;

constexpr Addr pcA = 0x1000;

unsigned
sequentialHits(ValuePredictor &predictor, Addr pc,
               const std::vector<Value> &values)
{
    unsigned hits = 0;
    for (const Value value : values) {
        const RawPrediction raw = predictor.lookup(pc);
        const bool hit = raw.hasPrediction && raw.value == value;
        hits += hit ? 1 : 0;
        predictor.train(pc, value, hit);
    }
    return hits;
}

// ---------------------------------------------------------------------
// FCM predictor
// ---------------------------------------------------------------------

TEST(Fcm, LearnsPeriodicPattern)
{
    // A period-3 sequence defeats last-value and stride predictors but
    // is exactly what a context predictor catches.
    FcmPredictor fcm(2);
    std::vector<Value> stream;
    for (int i = 0; i < 60; ++i)
        stream.push_back(100 + (i % 3) * 7);
    const unsigned hits = sequentialHits(fcm, pcA, stream);
    EXPECT_GT(hits, 45u) << "after warmup every value is in context";

    StridePredictor stride;
    const unsigned stride_hits = sequentialHits(stride, pcA, stream);
    EXPECT_GT(hits, stride_hits)
        << "FCM must beat stride on periodic patterns";
}

TEST(Fcm, LearnsConstants)
{
    FcmPredictor fcm(2);
    std::vector<Value> stream(20, 42);
    EXPECT_GE(sequentialHits(fcm, pcA, stream), 17u);
}

TEST(Fcm, CannotPredictFreshStrides)
{
    // A pure counter never repeats a context, so order-2 FCM stays
    // silent or wrong — the classic FCM weakness stride handles.
    FcmPredictor fcm(2);
    std::vector<Value> stream;
    for (int i = 0; i < 30; ++i)
        stream.push_back(1000 + i);
    EXPECT_EQ(sequentialHits(fcm, pcA, stream), 0u);
}

TEST(Fcm, SeparatesPcs)
{
    FcmPredictor fcm(2);
    sequentialHits(fcm, 0x1000, {1, 2, 1, 2, 1, 2, 1, 2});
    sequentialHits(fcm, 0x2000, {9, 9, 9, 9});
    EXPECT_EQ(fcm.tableSize(), 2u);
}

TEST(Fcm, FactoryBuildsIt)
{
    const auto predictor = makePredictor(PredictorKind::Fcm);
    EXPECT_EQ(predictor->name(), "fcm-order2");
    EXPECT_EQ(predictorKindFromString("fcm"), PredictorKind::Fcm);
}

TEST(Fcm, StrideInfoBroadcastsValue)
{
    FcmPredictor fcm(2);
    sequentialHits(fcm, pcA, {5, 6, 5, 6, 5, 6, 5, 6});
    const StrideInfo info = fcm.strideInfo(pcA);
    EXPECT_TRUE(info.valid);
    EXPECT_EQ(info.stride, 0u) << "FCM merges broadcast one value";
}

// ---------------------------------------------------------------------
// Profile hints
// ---------------------------------------------------------------------

/** Synthetic training trace with one constant, one stride, one random
 *  producer (distinct pcs). */
std::vector<TraceRecord>
trainingTrace(int reps = 50)
{
    std::vector<TraceRecord> trace;
    SeqNum seq = 0;
    Value noise = 7;
    for (int i = 0; i < reps; ++i) {
        TraceRecord constant;
        constant.seq = seq++;
        constant.pc = 0x1000;
        constant.op = OpCode::Addi;
        constant.rd = 1;
        constant.result = 55;
        trace.push_back(constant);

        TraceRecord striding = constant;
        striding.seq = seq++;
        striding.pc = 0x1004;
        striding.rd = 2;
        striding.result = 100 + static_cast<Value>(i) * 16;
        trace.push_back(striding);

        noise = noise * 6364136223846793005ull + 1442695040888963407ull;
        TraceRecord random = constant;
        random.seq = seq++;
        random.pc = 0x1008;
        random.rd = 3;
        random.result = noise;
        trace.push_back(random);
    }
    return trace;
}

TEST(ProfileHintsTest, ClassifiesByBehaviour)
{
    const ProfileHints hints = ProfileHints::profile(trainingTrace());
    EXPECT_EQ(hints.hintFor(0x1000), ValueHint::LastValue);
    EXPECT_EQ(hints.hintFor(0x1004), ValueHint::Stride);
    EXPECT_EQ(hints.hintFor(0x1008), ValueHint::NotPredictable);
    EXPECT_EQ(hints.hintFor(0x9999), ValueHint::NotPredictable)
        << "unseen instructions default to not-predictable";
    EXPECT_EQ(hints.staticInstructions(), 3u);
    EXPECT_EQ(hints.hintedLastValue(), 1u);
    EXPECT_EQ(hints.hintedStride(), 1u);
    EXPECT_EQ(hints.hintedNotPredictable(), 1u);
}

TEST(ProfileHintsTest, RareInstructionsStayUnhinted)
{
    auto trace = trainingTrace(2); // below min_executions
    const ProfileHints hints = ProfileHints::profile(trace);
    EXPECT_EQ(hints.hintFor(0x1000), ValueHint::NotPredictable);
}

TEST(HintedHybrid, FollowsHints)
{
    const ProfileHints hints = ProfileHints::profile(trainingTrace());
    HintedHybridPredictor predictor(hints);
    // Constant pc: predicted after one sighting (last-value, no
    // confidence counters in the hinted design).
    EXPECT_EQ(sequentialHits(predictor, 0x1000, {55, 55, 55, 55}), 3u);
    // Stride pc.
    EXPECT_EQ(
        sequentialHits(predictor, 0x1004, {100, 116, 132, 148}), 2u);
    // Random pc: suppressed entirely.
    EXPECT_EQ(sequentialHits(predictor, 0x1008, {1, 2, 3}), 0u);
    EXPECT_EQ(predictor.suppressedLookups(), 3u);
}

TEST(HintedHybrid, SuppressionSavesTableBandwidth)
{
    const ProfileHints hints = ProfileHints::profile(trainingTrace());
    VpTableConfig config;
    config.banks = 1; // every access conflicts
    config.portsPerBank = 1;
    config.hints = &hints;
    InterleavedVpTable table(
        makeClassifiedPredictor(PredictorKind::Stride), config);
    // Bundle: predictable-constant + random + stride. The hint filter
    // removes the random request BEFORE arbitration, so both remaining
    // requests... still conflict on the single bank, but only one
    // access is denied instead of two.
    const auto grants = table.processBundle({0x1000, 0x1008, 0x1004});
    EXPECT_TRUE(grants[0].granted);
    EXPECT_FALSE(grants[1].granted) << "hint-filtered: no prediction";
    EXPECT_FALSE(grants[2].granted) << "bank conflict with 0x1000";
    EXPECT_EQ(table.hintFilteredRequests(), 1u);
    EXPECT_EQ(table.deniedAccesses(), 1u)
        << "without the filter there would be two conflicts";
}

// ---------------------------------------------------------------------
// Instruction cache
// ---------------------------------------------------------------------

TEST(ICache, ColdMissThenHit)
{
    InstructionCache icache;
    EXPECT_FALSE(icache.access(0x1000));
    EXPECT_TRUE(icache.access(0x1000));
    EXPECT_TRUE(icache.access(0x1004)) << "same 32-byte line";
    EXPECT_FALSE(icache.access(0x1020)) << "next line";
    EXPECT_EQ(icache.misses(), 2u);
    EXPECT_EQ(icache.accesses(), 4u);
}

TEST(ICache, LruReplacementWithinSet)
{
    ICacheConfig config;
    config.capacityBytes = 128; // 2 sets x 2 ways x 32B
    config.lineBytes = 32;
    config.ways = 2;
    InstructionCache icache(config);
    // Three lines mapping to set 0 (line addresses even).
    icache.access(0x000);
    icache.access(0x080);
    icache.access(0x100); // evicts 0x000
    EXPECT_FALSE(icache.access(0x000));
    EXPECT_TRUE(icache.access(0x100));
}

TEST(ICache, TinyCacheThrashesBigLoop)
{
    // A loop bigger than the cache must keep missing.
    ICacheConfig config;
    config.capacityBytes = 64;
    config.lineBytes = 32;
    config.ways = 1;
    InstructionCache icache(config);
    for (int pass = 0; pass < 4; ++pass)
        for (Addr pc = 0; pc < 256; pc += 4)
            icache.access(pc);
    EXPECT_LT(icache.hitRate(), 0.95);
}

TEST(ICache, SequentialFetchStallsOnMisses)
{
    // Drive a big-footprint trace through a 64-byte icache: fetch must
    // take many more cycles than with no icache at all.
    const auto trace = captureWorkloadTrace("gcc", 5000);
    PerfectBranchPredictor oracle;

    ICacheConfig tiny;
    tiny.capacityBytes = 64;
    tiny.lineBytes = 32;
    tiny.ways = 1;
    tiny.missPenalty = 10;
    InstructionCache icache(tiny);
    SequentialFetch with_cache(trace, oracle, 0, &icache);
    SequentialFetch without(trace, oracle, 0);

    const auto drain = [](SequentialFetch &engine) {
        std::vector<FetchedInst> out;
        Cycle now = 0;
        while (!engine.done())
            engine.fetch(++now, 16, out);
        return now;
    };
    const Cycle cycles_with = drain(with_cache);
    const Cycle cycles_without = drain(without);
    EXPECT_GT(cycles_with, cycles_without * 2);
    EXPECT_LT(icache.hitRate(), 1.0);
}

// ---------------------------------------------------------------------
// Branch address cache
// ---------------------------------------------------------------------

std::vector<TraceRecord>
loopTrace(int iterations)
{
    ProgramBuilder b("loop");
    Label loop = b.newLabel();
    b.li(s0, iterations);
    b.bind(loop);
    b.addi(s1, s1, 1);
    b.addi(s0, s0, -1);
    b.bne(s0, zero, loop);
    b.halt();
    Program prog = b.build();
    std::vector<TraceRecord> trace;
    Interpreter interp(prog, Memory{});
    interp.run(0, &trace);
    return trace;
}

TEST(BranchAddressCache, WarmBundlesSpanMultipleBlocks)
{
    const auto trace = loopTrace(200);
    PerfectBranchPredictor oracle;
    BacConfig config;
    config.maxBlocksPerCycle = 3;
    // One loop block repeats: its start pc lands in one icache bank, so
    // consecutive iterations CONFLICT; use a 3-inst loop whose copies
    // share a bank -> expect conflicts counted but forward progress.
    BranchAddressCacheFetch engine(trace, oracle, config);
    std::vector<FetchedInst> out;
    Cycle now = 0;
    while (!engine.done() && now < 10000)
        engine.fetch(++now, 40, out);
    EXPECT_EQ(out.size(), trace.size());
    EXPECT_GT(engine.bacHits() + engine.bankConflicts(), 0u);
}

TEST(BranchAddressCache, HitRateGrowsWarm)
{
    // Alternate between two code regions so blocks land in different
    // banks; after warmup the BAC should serve multi-block bundles.
    const auto trace = captureWorkloadTrace("gcc", 20000);
    PerfectBranchPredictor oracle;
    BranchAddressCacheFetch engine(trace, oracle, {});
    std::vector<FetchedInst> out;
    Cycle now = 0;
    while (!engine.done() && now < 200000)
        engine.fetch(++now, 40, out);
    EXPECT_EQ(out.size(), trace.size());
    EXPECT_GT(engine.hitRate(), 0.5);
}

TEST(BranchAddressCache, BadGeometryDies)
{
    const auto trace = loopTrace(4);
    PerfectBranchPredictor oracle;
    BacConfig config;
    config.entries = 100;
    EXPECT_EXIT((BranchAddressCacheFetch{trace, oracle, config}),
                ::testing::ExitedWithCode(1), "power of two");
}

TEST(PipelineIntegration, BacFrontEndRuns)
{
    const auto trace = captureWorkloadTrace("m88ksim", 20000);
    PipelineConfig config;
    config.frontEnd = FrontEndKind::BranchAddressCache;
    config.useValuePrediction = true;
    const PipelineResult result = runPipelineMachine(trace, config);
    EXPECT_EQ(result.instructions, trace.size());
    EXPECT_GT(result.bacHitRate, 0.0);
}

/** A loop whose body is two basic blocks, both ending in taken
 *  transfers, with start addresses in different icache banks. */
std::vector<TraceRecord>
twoBlockLoopTrace(int iterations)
{
    ProgramBuilder b("two-block");
    Label loop = b.newLabel();
    Label second = b.newLabel();
    b.li(s0, iterations);
    b.bind(loop);
    b.addi(s1, s1, 1);
    b.addi(s2, s2, 1);
    b.addi(s3, s3, 1);
    b.beq(zero, zero, second); // always taken: ends block A
    for (int i = 0; i < 8; ++i)
        b.nop(); // dead padding pushes block B into another bank
    b.bind(second);
    b.addi(s4, s4, 1);
    b.addi(s5, s5, 1);
    b.addi(s0, s0, -1);
    b.bne(s0, zero, loop); // taken back edge: ends block B
    b.halt();
    Program prog = b.build();
    std::vector<TraceRecord> trace;
    Interpreter interp(prog, Memory{});
    interp.run(0, &trace);
    return trace;
}

TEST(PipelineIntegration, BacBeatsSingleTakenBranchWithVp)
{
    const auto trace = twoBlockLoopTrace(400);
    PipelineConfig seq;
    seq.useValuePrediction = true;
    seq.perfectValuePrediction = true;
    seq.frontEnd = FrontEndKind::Sequential;
    seq.maxTakenBranches = 1;
    PipelineConfig bac = seq;
    bac.frontEnd = FrontEndKind::BranchAddressCache;
    const double seq_ipc = runPipelineMachine(trace, seq).ipc;
    const double bac_ipc = runPipelineMachine(trace, bac).ipc;
    EXPECT_GT(bac_ipc, seq_ipc)
        << "multi-block fetch must beat one taken branch per cycle";
}

TEST(WrongPath, FetchWalksThePredictedPath)
{
    // A loop with a cold-BTB mispredicted back edge: once the branch
    // mispredicts, the engine must emit wrong-path records from the
    // static image (the fall-through path) until resolution.
    Workload workload = buildWorkload("gcc");
    const auto trace = captureWorkloadTrace("gcc", 5000);
    TwoLevelPApPredictor bpred;
    SequentialFetch engine(trace, bpred, 0, nullptr, &workload.program);

    std::vector<FetchedInst> out;
    Cycle now = 0;
    std::uint64_t wrong_path = 0;
    SeqNum pending_seq = invalidSeqNum;
    Cycle resolve_at = 0;
    while (!engine.done() && now < 100000) {
        ++now;
        // Resolve an outstanding misprediction three cycles after it
        // was fetched (a fake machine), leaving a wrong-path window.
        if (pending_seq != invalidSeqNum && now >= resolve_at) {
            engine.branchResolved(pending_seq, now);
            pending_seq = invalidSeqNum;
        }
        const std::size_t before = out.size();
        engine.fetch(now, 16, out);
        for (std::size_t i = before; i < out.size(); ++i)
            wrong_path += out[i].wrongPath ? 1 : 0;
        if (!out.empty() && out.back().mispredicted &&
            !out.back().wrongPath && pending_seq == invalidSeqNum) {
            pending_seq = out.back().record.seq;
            resolve_at = now + 3;
        }
    }
    EXPECT_GT(wrong_path, 0u);
    EXPECT_EQ(engine.wrongPathFetched(), wrong_path);
    // Every correct-path record must still be delivered in order.
    std::size_t correct = 0;
    for (const FetchedInst &inst : out) {
        if (inst.wrongPath)
            continue;
        EXPECT_EQ(inst.record.seq, trace[correct].seq);
        ++correct;
    }
    EXPECT_EQ(correct, trace.size());
}

TEST(WrongPath, PipelineSquashesAndStillCommitsEverything)
{
    Workload workload = buildWorkload("perl");
    const auto trace = captureWorkloadTrace("perl", 30000);
    PipelineConfig config;
    config.perfectBranchPredictor = false;
    config.maxTakenBranches = 4;
    config.useValuePrediction = true;
    config.modelWrongPath = true;
    config.program = &workload.program;
    const PipelineResult result = runPipelineMachine(trace, config);
    EXPECT_EQ(result.instructions, trace.size());
    EXPECT_GT(result.wrongPathFetched, 0u);
}

TEST(WrongPath, CostsCyclesVersusStallingFetch)
{
    // Wrong-path bubbles occupy window slots and pollute the predictor,
    // so modelling them can only slow the machine down (or tie).
    Workload workload = buildWorkload("go");
    const auto trace = captureWorkloadTrace("go", 30000);
    PipelineConfig config;
    config.perfectBranchPredictor = false;
    config.maxTakenBranches = 4;
    config.useValuePrediction = true;
    const Cycle stalled = runPipelineMachine(trace, config).cycles;
    config.modelWrongPath = true;
    config.program = &workload.program;
    const Cycle wrong_path = runPipelineMachine(trace, config).cycles;
    EXPECT_GE(wrong_path, stalled);
}

TEST(WrongPath, PerfectBpNeverTriggersIt)
{
    Workload workload = buildWorkload("li");
    const auto trace = captureWorkloadTrace("li", 10000);
    PipelineConfig config;
    config.perfectBranchPredictor = true;
    config.modelWrongPath = true;
    config.program = &workload.program;
    const PipelineResult result = runPipelineMachine(trace, config);
    EXPECT_EQ(result.wrongPathFetched, 0u);
}

TEST(WrongPath, RequiresProgramImage)
{
    const auto trace = captureWorkloadTrace("li", 1000);
    PipelineConfig config;
    config.modelWrongPath = true; // no program given
    EXPECT_EXIT(runPipelineMachine(trace, config),
                ::testing::ExitedWithCode(1), "program image");
}

TEST(WrongPath, AbandonReleasesInFlightSlots)
{
    StridePredictor predictor;
    predictor.train(0x1000, 10);
    predictor.train(0x1000, 20);
    predictor.lookup(0x1000); // in flight: 1 (squashed later)
    predictor.abandon(0x1000);
    // After the abandon, a wrong repair should project for 0 in-flight
    // copies, i.e. behave exactly like the sequential case.
    predictor.train(0x1000, 30, false);
    EXPECT_EQ(predictor.lookup(0x1000).value, 40u);
}

TEST(PipelineIntegration, TinyICacheSlowsTheMachine)
{
    const auto trace = captureWorkloadTrace("gcc", 20000);
    PipelineConfig config;
    config.maxTakenBranches = 4;
    const Cycle perfect = runPipelineMachine(trace, config).cycles;
    config.useInstructionCache = true;
    config.icacheConfig.capacityBytes = 128;
    config.icacheConfig.lineBytes = 32;
    config.icacheConfig.ways = 1;
    const PipelineResult tiny = runPipelineMachine(trace, config);
    EXPECT_GT(tiny.cycles, perfect);
    EXPECT_LT(tiny.icacheHitRate, 1.0);
}

TEST(PipelineIntegration, BigICacheIsTransparent)
{
    const auto trace = captureWorkloadTrace("perl", 20000);
    PipelineConfig config;
    config.maxTakenBranches = 4;
    const Cycle no_cache = runPipelineMachine(trace, config).cycles;
    config.useInstructionCache = true; // default 16 KiB
    const PipelineResult cached = runPipelineMachine(trace, config);
    EXPECT_GT(cached.icacheHitRate, 0.999)
        << "the mini benchmarks fit a 16 KiB icache";
    EXPECT_LT(static_cast<double>(cached.cycles),
              static_cast<double>(no_cache) * 1.05);
}

} // namespace
} // namespace vpsim
