/**
 * @file
 * Randomized (fuzz) tests: generate random but well-formed programs,
 * execute them, and check cross-cutting invariants of the whole stack —
 * trace consistency, analysis conservation laws, machine-model sanity,
 * and trace-file round-trips. Seeds are fixed so failures reproduce.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/did.hpp"
#include "analysis/predictability.hpp"
#include "common/rng.hpp"
#include "core/ideal_machine.hpp"
#include "core/pipeline_machine.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_v3.hpp"
#include "vm/interpreter.hpp"
#include "vm/program_builder.hpp"

namespace vpsim
{
namespace
{

/**
 * Build a random structured program: a chain of basic blocks with
 * random ALU/memory bodies, counted loops, and function calls — always
 * terminating, never trapping.
 */
Program
randomProgram(std::uint64_t seed)
{
    Rng rng(seed);
    ProgramBuilder b("fuzz-" + std::to_string(seed));

    // Registers: 3..11 scratch, 12..17 loop counters, 2 = sp.
    const auto scratch = [&] {
        return static_cast<RegIndex>(3 + rng.nextBelow(9));
    };

    const unsigned num_functions = 1 + rng.nextBelow(3);
    std::vector<Label> functions;
    for (unsigned i = 0; i < num_functions; ++i)
        functions.push_back(b.newLabel());
    Label main_entry = b.newLabel();
    b.j(main_entry);

    // Leaf functions: straight-line arithmetic on a0.
    for (unsigned f = 0; f < num_functions; ++f) {
        b.bind(functions[f]);
        const unsigned body = 1 + rng.nextBelow(6);
        for (unsigned i = 0; i < body; ++i) {
            switch (rng.nextBelow(4)) {
              case 0:
                b.addi(22, 22, static_cast<std::int64_t>(
                                   rng.nextBelow(64)));
                break;
              case 1:
                b.xori(22, 22, static_cast<std::int64_t>(
                                   rng.nextBelow(255)));
                break;
              case 2:
                b.slli(22, 22, 1);
                break;
              default:
                b.srli(22, 22, 1);
                break;
            }
        }
        b.ret();
    }

    b.bind(main_entry);
    b.li(2, 0x80000); // stack
    const unsigned num_loops = 1 + rng.nextBelow(3);
    for (unsigned loop_i = 0; loop_i < num_loops; ++loop_i) {
        const auto counter = static_cast<RegIndex>(12 + loop_i);
        const auto iterations =
            static_cast<std::int64_t>(4 + rng.nextBelow(60));
        Label top = b.newLabel();
        b.li(counter, iterations);
        b.bind(top);
        // Random loop body.
        const unsigned body = 2 + rng.nextBelow(8);
        for (unsigned i = 0; i < body; ++i) {
            const RegIndex rd = scratch();
            switch (rng.nextBelow(6)) {
              case 0:
                b.add(rd, scratch(), scratch());
                break;
              case 1:
                b.mul(rd, scratch(), counter);
                break;
              case 2: {
                // Bounded memory traffic in a private page.
                b.andi(rd, scratch(), 0x3f8);
                b.addi(rd, rd, 0x40000);
                b.st(scratch(), rd, 0);
                b.ld(rd, rd, 0);
                break;
              }
              case 3:
                b.slt(rd, scratch(), counter);
                break;
              case 4:
                b.call(functions[rng.nextBelow(num_functions)]);
                break;
              default: {
                // A data-dependent forward skip.
                Label skip = b.newLabel();
                b.andi(rd, scratch(), 1);
                b.beq(rd, 0, skip);
                b.addi(scratch(), scratch(), 1);
                b.bind(skip);
                break;
              }
            }
        }
        b.addi(counter, counter, -1);
        b.bne(counter, 0, top);
    }
    b.halt();
    return b.build();
}

std::vector<TraceRecord>
fuzzTrace(std::uint64_t seed)
{
    Program program = randomProgram(seed);
    Interpreter interp(program, Memory{});
    std::vector<TraceRecord> trace;
    const auto result = interp.run(200000, &trace);
    EXPECT_TRUE(result.halted) << "fuzz programs must terminate";
    return trace;
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzSweep, TraceIsWellFormed)
{
    const auto trace = fuzzTrace(GetParam());
    ASSERT_FALSE(trace.empty());
    for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
        ASSERT_EQ(trace[i].seq, i);
        ASSERT_EQ(trace[i].nextPc, trace[i + 1].pc)
            << "control-flow discontinuity at " << i;
        if (!trace[i].isControlFlow()) {
            ASSERT_EQ(trace[i].nextPc, trace[i].fallThrough());
        }
    }
    EXPECT_EQ(trace.back().op, OpCode::Halt);
}

TEST_P(FuzzSweep, AnalysesAgreeOnArcCounts)
{
    const auto trace = fuzzTrace(GetParam());
    const DidAnalysis did = analyzeDid(trace);
    const PredictabilityAnalysis pa = analyzePredictability(trace);
    EXPECT_EQ(did.totalArcs, pa.totalArcs)
        << "both analyses walk the same DFG";
    if (pa.totalArcs > 0) {
        EXPECT_NEAR(pa.fracUnpredictable + pa.fracPredictable(), 1.0,
                    1e-9);
    }
}

TEST_P(FuzzSweep, MachinesAgreeOnInstructionCount)
{
    const auto trace = fuzzTrace(GetParam());
    IdealMachineConfig ideal;
    ideal.fetchRate = 8;
    ideal.useValuePrediction = true;
    const IdealMachineResult ideal_result =
        runIdealMachine(trace, ideal);
    EXPECT_EQ(ideal_result.instructions, trace.size());
    EXPECT_GE(ideal_result.predictionsMade,
              ideal_result.predictionsCorrect);

    PipelineConfig pipe;
    pipe.useValuePrediction = true;
    pipe.maxTakenBranches = 2;
    const PipelineResult pipe_result = runPipelineMachine(trace, pipe);
    EXPECT_EQ(pipe_result.instructions, trace.size());
    EXPECT_GT(pipe_result.ipc, 0.0);
    // The pipeline pays front-end and commit costs the ideal model
    // ignores at the same nominal bandwidth (8 vs taken-limited), so
    // only weak sanity holds: both finish, neither exceeds its width.
    EXPECT_LE(ideal_result.ipc, 8.5);
}

TEST_P(FuzzSweep, VpNeverBreaksCorrectness)
{
    // Value prediction is a timing feature: cycles change, committed
    // instruction counts and program results must not.
    const auto trace = fuzzTrace(GetParam());
    PipelineConfig config;
    config.maxTakenBranches = 0;
    config.useValuePrediction = false;
    const PipelineResult off = runPipelineMachine(trace, config);
    config.useValuePrediction = true;
    const PipelineResult on = runPipelineMachine(trace, config);
    EXPECT_EQ(off.instructions, on.instructions);
}

TEST_P(FuzzSweep, TraceFilesRoundTrip)
{
    const auto trace = fuzzTrace(GetParam());
    const std::string path =
        "/tmp/vpsim_fuzz_" + std::to_string(GetParam()) + ".vptrace";
    writeTraceFile(path, trace);
    const auto reloaded = readTraceFile(path);
    ASSERT_EQ(reloaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); i += 97) {
        EXPECT_EQ(reloaded[i].pc, trace[i].pc);
        EXPECT_EQ(reloaded[i].result, trace[i].result);
    }
    std::remove(path.c_str());
}

TEST_P(FuzzSweep, CorruptTraceFilesNeverCrashTheReader)
{
    // Satellite of the robustness work: whatever bytes are on disk, the
    // Status-returning reader must answer — ok for the pristine file,
    // non-ok for every mutation — and never crash, hang, or over-
    // allocate (the header's record count is untrusted).
    const auto trace = fuzzTrace(GetParam());
    const std::string path = "/tmp/vpsim_fuzz_corrupt_" +
                             std::to_string(GetParam()) + ".vptrace";
    writeTraceFile(path, trace);

    std::vector<unsigned char> pristine;
    {
        std::FILE *file = std::fopen(path.c_str(), "rb");
        ASSERT_NE(file, nullptr);
        std::fseek(file, 0, SEEK_END);
        pristine.resize(static_cast<std::size_t>(std::ftell(file)));
        std::fseek(file, 0, SEEK_SET);
        ASSERT_EQ(std::fread(pristine.data(), 1, pristine.size(), file),
                  pristine.size());
        std::fclose(file);
    }
    ASSERT_GE(pristine.size(), 20u); // header + footer at minimum

    const auto rewrite = [&](const std::vector<unsigned char> &bytes) {
        std::FILE *file = std::fopen(path.c_str(), "wb");
        ASSERT_NE(file, nullptr);
        if (!bytes.empty()) {
            ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file),
                      bytes.size());
        }
        std::fclose(file);
    };

    std::vector<TraceRecord> out;

    // Truncation at every section boundary: inside the header, at the
    // header/record seam, at each of the first record boundaries, and
    // inside the footer.
    std::vector<std::size_t> cuts = {0, 1, 8, 15, 16,
                                     pristine.size() - 4,
                                     pristine.size() - 2,
                                     pristine.size() - 1};
    for (std::size_t k = 1; k <= 4; ++k) {
        const std::size_t boundary = 16 + 45 * k;
        if (boundary < pristine.size())
            cuts.push_back(boundary);
    }
    for (const std::size_t cut : cuts) {
        rewrite({pristine.begin(),
                 pristine.begin() + static_cast<std::ptrdiff_t>(cut)});
        const Status read = readTrace(path, &out);
        EXPECT_FALSE(read.isOk())
            << "truncation at byte " << cut << " must be detected";
    }

    // Random single-byte flips anywhere in the file. XOR with a
    // non-zero value guarantees the byte actually changes.
    Rng rng(GetParam() * 7919 + 1);
    for (int trial = 0; trial < 40; ++trial) {
        auto mutated = pristine;
        const auto at = static_cast<std::size_t>(
            rng.nextBelow(mutated.size()));
        mutated[at] ^= static_cast<unsigned char>(
            1 + rng.nextBelow(255));
        rewrite(mutated);
        const Status read = readTrace(path, &out);
        EXPECT_FALSE(read.isOk())
            << "flipped byte " << at << " must fail the checksum";
    }

    // The pristine bytes still read back fine.
    rewrite(pristine);
    EXPECT_TRUE(readTrace(path, &out).isOk());
    EXPECT_EQ(out.size(), trace.size());
    std::remove(path.c_str());
}

/** One v3 block frame located by walking the pristine file bytes. */
struct V3BlockInfo
{
    std::size_t offset;       ///< File offset of the "VPB3" magic.
    std::size_t payloadBytes; ///< Encoded payload size.
    std::uint32_t count;      ///< Records the frame declares.
};

std::uint32_t
leU32(const std::vector<unsigned char> &bytes, std::size_t at)
{
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(bytes[at + i]) << (8 * i);
    return value;
}

/** Walk the block frames of a pristine v3 file (header .. trailer). */
std::vector<V3BlockInfo>
walkV3Blocks(const std::vector<unsigned char> &bytes)
{
    std::vector<V3BlockInfo> blocks;
    std::size_t off = v3HeaderBytes;
    while (off + v3BlockFrameBytes <= bytes.size() &&
           std::memcmp(bytes.data() + off, "VPB3", 4) == 0) {
        V3BlockInfo info;
        info.offset = off;
        info.count = leU32(bytes, off + 4);
        info.payloadBytes = leU32(bytes, off + 8);
        blocks.push_back(info);
        off += v3BlockFrameBytes + info.payloadBytes + 4;
    }
    return blocks;
}

TEST_P(FuzzSweep, V3SalvageRecoversExactlyTheIntactBlocks)
{
    // The containment contract of the v3 format (docs/TRACE_FORMAT.md):
    // whatever single-block damage is on disk — a flipped bit at the
    // block boundary, a flip mid-payload, truncation mid-block, or
    // trailing garbage — a strict read must refuse the file, and a
    // salvage read must never abort, recovering exactly the records of
    // every intact block with the loss tallied in the salvage report.
    salvageRegistry().reset();
    const auto trace = fuzzTrace(GetParam());
    ASSERT_FALSE(trace.empty());
    // Size blocks so every trace yields a handful of boundaries to
    // attack regardless of how long the fuzz program ran.
    const auto rpb = static_cast<std::uint32_t>(
        std::max<std::size_t>(16, (trace.size() + 7) / 8));
    const std::string path = "/tmp/vpsim_fuzz_v3_" +
                             std::to_string(GetParam()) + ".vptrace";
    ASSERT_TRUE(writeTraceV3(path, trace, rpb).isOk());

    std::vector<unsigned char> pristine;
    {
        std::FILE *file = std::fopen(path.c_str(), "rb");
        ASSERT_NE(file, nullptr);
        std::fseek(file, 0, SEEK_END);
        pristine.resize(static_cast<std::size_t>(std::ftell(file)));
        std::fseek(file, 0, SEEK_SET);
        ASSERT_EQ(std::fread(pristine.data(), 1, pristine.size(), file),
                  pristine.size());
        std::fclose(file);
    }
    const auto blocks = walkV3Blocks(pristine);
    ASSERT_GE(blocks.size(), 2u) << "need multiple blocks to attack";
    std::uint64_t declared = 0;
    for (const V3BlockInfo &b : blocks)
        declared += b.count;
    ASSERT_EQ(declared, trace.size()) << "frame walk lost records";

    const auto rewrite = [&](const std::vector<unsigned char> &bytes) {
        std::FILE *file = std::fopen(path.c_str(), "wb");
        ASSERT_NE(file, nullptr);
        ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file),
                  bytes.size());
        std::fclose(file);
    };

    // The recovered stream must be the original with exactly block b's
    // record range cut out (records carry seq == index).
    const auto expectWithoutBlock =
        [&](std::size_t b, const std::vector<TraceRecord> &got) {
            std::size_t first = 0;
            for (std::size_t i = 0; i < b; ++i)
                first += blocks[i].count;
            ASSERT_EQ(got.size(), trace.size() - blocks[b].count);
            for (std::size_t i = 0; i < got.size(); ++i) {
                const std::size_t src =
                    i < first ? i : i + blocks[b].count;
                ASSERT_EQ(got[i].seq, trace[src].seq)
                    << "record " << i << " after losing block " << b;
                ASSERT_EQ(got[i].pc, trace[src].pc);
                ASSERT_EQ(got[i].result, trace[src].result);
            }
        };

    std::vector<TraceRecord> out;
    BlockSalvageReport report;

    // Pristine file: both modes read everything, salvage stays clean.
    ASSERT_TRUE(readTraceV3(path, &out, false).isOk());
    ASSERT_EQ(out.size(), trace.size());
    ASSERT_TRUE(readTraceV3(path, &out, true, &report).isOk());
    ASSERT_EQ(out.size(), trace.size());
    EXPECT_TRUE(report.clean());

    // A flipped bit at every block boundary (the frame magic) and one
    // mid-payload per block.
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        const std::size_t attacks[2] = {
            blocks[b].offset,
            blocks[b].offset + v3BlockFrameBytes +
                blocks[b].payloadBytes / 2};
        for (const std::size_t at : attacks) {
            auto mutated = pristine;
            mutated[at] ^= 0xffu;
            rewrite(mutated);
            EXPECT_FALSE(readTraceV3(path, &out, false).isOk())
                << "strict read must refuse the flip at byte " << at;
            const Status salvaged = readTraceV3(path, &out, true,
                                                &report);
            ASSERT_TRUE(salvaged.isOk())
                << "salvage must never abort (flip at byte " << at
                << "): " << salvaged.message();
            expectWithoutBlock(b, out);
            EXPECT_GE(report.blocksQuarantined, 1u);
            EXPECT_EQ(report.recordsLost, blocks[b].count)
                << "trailer-exact loss accounting for block " << b;
        }
    }

    // Truncation mid-block: the cut block is quarantined, everything
    // before it survives, and salvage tolerates the missing trailer.
    {
        const V3BlockInfo &last = blocks.back();
        const std::size_t cut =
            last.offset + v3BlockFrameBytes + last.payloadBytes / 2;
        rewrite({pristine.begin(),
                 pristine.begin() + static_cast<std::ptrdiff_t>(cut)});
        EXPECT_FALSE(readTraceV3(path, &out, false).isOk())
            << "strict read must refuse mid-block truncation";
        const Status salvaged = readTraceV3(path, &out, true, &report);
        ASSERT_TRUE(salvaged.isOk())
            << "salvage must survive truncation: " << salvaged.message();
        expectWithoutBlock(blocks.size() - 1, out);
        EXPECT_GE(report.blocksQuarantined, 1u);
        EXPECT_EQ(report.recordsLost, last.count);
    }

    // Trailing garbage after a valid trailer: strict refuses, salvage
    // delivers the complete trace with nothing quarantined.
    {
        auto mutated = pristine;
        mutated.insert(mutated.end(), 64, 0xa5u);
        rewrite(mutated);
        EXPECT_FALSE(readTraceV3(path, &out, false).isOk())
            << "strict read must refuse trailing garbage";
        const Status salvaged = readTraceV3(path, &out, true, &report);
        ASSERT_TRUE(salvaged.isOk()) << salvaged.message();
        ASSERT_EQ(out.size(), trace.size());
        EXPECT_TRUE(report.clean())
            << "garbage beyond the trailer costs nothing";
    }

    std::remove(path.c_str());
    // Damage above was tallied process-globally; do not leak it into
    // other tests' view of the registry.
    salvageRegistry().reset();
}

TEST_P(FuzzSweep, FrontEndsDeliverIdenticalStreams)
{
    // Whatever the front end, the machine must see the same dynamic
    // instruction stream (trace-driven correctness).
    const auto trace = fuzzTrace(GetParam());
    for (const FrontEndKind kind :
         {FrontEndKind::Sequential, FrontEndKind::TraceCache,
          FrontEndKind::BranchAddressCache,
          FrontEndKind::CollapsingBuffer}) {
        PipelineConfig config;
        config.frontEnd = kind;
        config.maxTakenBranches = 2;
        const PipelineResult result = runPipelineMachine(trace, config);
        EXPECT_EQ(result.instructions, trace.size())
            << "front end " << static_cast<int>(kind);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

} // namespace
} // namespace vpsim
