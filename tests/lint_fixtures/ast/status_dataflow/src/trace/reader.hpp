// status-dataflow fixture, trace side: Status producers whose home
// subsystem is `trace` (this mini-tree mirrors the repo layout, so
// cross-subsystem propagation is exercisable). Parsed, never
// compiled.

class Status {
  public:
    static Status ok();
    static Status error(int code, const char *message);
    static Status wrap(int code, const char *message,
                       const Status &cause);
    bool isOk() const;
    int code() const;
};

Status loadBlock();
Status verifyBlock();
