// status-dataflow fixture, sim side: every way to mishandle a Status
// produced by the trace subsystem. Each flagged line carries an
// expect tag; the clean and suppressed cases below must stay silent
// or the self-test fails on the false positive.

#include "trace/reader.hpp"

// Violation: result of a Status-returning call dropped on the floor.
void fireAndForget() {
    loadBlock(); // lint:expect status-dataflow
}

// Violation: the first Status is overwritten before anything read it.
Status doubleStep() {
    Status status = loadBlock();
    status = verifyBlock(); // lint:expect status-dataflow
    return Status::wrap(5, "double step", status);
}

// Violation: stored, then never consulted.
void swallow() {
    Status status = loadBlock(); // lint:expect status-dataflow
    int unrelated = 0;
    (void)unrelated;
}

// Violation: a trace-subsystem Status returned verbatim from sim.
Status passThrough() {
    Status status = loadBlock();
    if (!status.isOk())
        return status; // lint:expect status-dataflow
    return Status::ok();
}

// Violation: direct unwrapped propagation across the boundary.
Status reload() {
    return loadBlock(); // lint:expect status-dataflow
}

// Clean: consulted, then re-raised with this layer's context.
Status wrapped() {
    Status status = loadBlock();
    if (status.isOk())
        return Status::ok();
    return Status::wrap(7, "reload failed", status);
}

// Suppressed: the probe's failure is expected and intentionally
// ignored.
void probeOnly() {
    // Warm-up probe: failure here only means the cache is cold, the
    // caller re-reads the block for real. lint:allow status-dataflow
    Status status = loadBlock();
}
