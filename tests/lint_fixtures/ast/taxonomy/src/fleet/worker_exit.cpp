// Seeded violations for the taxonomy checker (vpsim-analyze): a
// mini fleet-exit taxonomy with deliberate drift. Parsed, never
// compiled. Lives under src/fleet/ inside this fixture tree so the
// magic-exit-literal rule (fleet files only) is active.

enum class StatusCode {
    kOk,
    kIo,
    kCorrupt,
    kCanceled,
    kTimeout,
    kInternal,
};

enum WorkerExitCode {
    kWorkerExitOk = 0,
    kWorkerExitIo = 41,
    kWorkerExitCorrupt = 20, // lint:expect taxonomy
    kWorkerExitTimeout = 44,
    kWorkerExitInternal = 45,
};

StatusCode classifyExit(int code) {
    switch (code) {
      case kWorkerExitOk: return StatusCode::kOk;
      case kWorkerExitIo: return StatusCode::kIo;
      case kWorkerExitCorrupt: return StatusCode::kCorrupt;
      case kWorkerExitTimeout: return StatusCode::kTimeout;
      case kWorkerExitInternal: return StatusCode::kInternal;
      case 99: return StatusCode::kIo; // lint:expect taxonomy
      default: return StatusCode::kInternal;
    }
}

int exitCodeForStatus(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return kWorkerExitOk;
      case StatusCode::kIo: return kWorkerExitIo;
      case StatusCode::kCorrupt: return kWorkerExitCorrupt;
      case StatusCode::kTimeout: return kWorkerExitIo; // lint:expect taxonomy
      case StatusCode::kCanceled: return kWorkerExitInternal;
      case StatusCode::kInternal: return kWorkerExitInternal;
    }
    return kWorkerExitInternal;
}

// Violation: a worker exiting with an integer the taxonomy never
// declared — the supervisor will classify it as kInternal and the
// failure class is lost.
void abortWorker() {
    ::_exit(77); // lint:expect taxonomy
}

// Suppressed: deliberate shell convention, outside the taxonomy.
void shellStyleExit() {
    // 126 is the shell's cannot-execute convention for exec wrappers,
    // intentionally not a WorkerExitCode. lint:allow taxonomy
    ::_exit(126);
}
