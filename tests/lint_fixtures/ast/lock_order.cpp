// Seeded violations for the lock-order checker (vpsim-analyze).
// Parsed, never compiled: EXCLUDES(...) reads as an annotation macro
// exactly like src/common/thread_annotations.hpp spells it.

class Mutex {};

class MutexLock {
  public:
    explicit MutexLock(Mutex &m);
};

class Pair {
  public:
    void lockAlphaThenBeta();
    void lockBetaThenAlpha();
    void reenter();
    void takeBeta();
    void nestedSelfDeadlock();
    void helper() EXCLUDES(alpha);
    void callsHelperLocked();
    void checkedHelper();

  private:
    Mutex alpha;
    Mutex beta;
};

// One half of the cycle: alpha -> beta. The cycle finding is anchored
// at the lexically first participating edge, which is this inner
// acquisition.
void Pair::lockAlphaThenBeta() {
    MutexLock first(alpha);
    MutexLock second(beta); // lint:expect lock-order
}

// The other half: beta -> alpha closes the cycle.
void Pair::lockBetaThenAlpha() {
    MutexLock first(beta);
    MutexLock second(alpha);
}

// Violation: re-acquiring a held non-recursive mutex.
void Pair::reenter() {
    MutexLock outer(alpha);
    MutexLock inner(alpha); // lint:expect lock-order
}

void Pair::takeBeta() {
    MutexLock lock(beta);
}

// Violation: callee (transitively) takes a lock the caller holds.
void Pair::nestedSelfDeadlock() {
    MutexLock lock(beta);
    takeBeta(); // lint:expect lock-order
}

// Violation: the EXCLUDES annotation on helper() says it must not be
// entered with alpha held.
void Pair::callsHelperLocked() {
    MutexLock lock(alpha);
    helper(); // lint:expect lock-order
}

// Suppressed: in this configuration the helper only probes the flag
// and never blocks on alpha.
void Pair::checkedHelper() {
    MutexLock lock(alpha);
    // Probe-only path, cannot block on alpha here.
    // lint:allow lock-order
    helper();
}
