// Seeded violations for the span-lifetime checker (vpsim-analyze).
//
// Parsed by the analyzer, never compiled: the stubs below carry the
// NAMES the checker keys on (TraceSpan, TraceSource::nextBlock, ...),
// not real behavior. Every line that must be flagged carries an
// expect tag (lint colon expect + checker id); the self-test requires
// the exact set — a false positive anywhere else in this file fails
// too.

struct TraceRecord {
    int pc;
};

class TraceSpan {
  public:
    const TraceRecord *begin() const;
    const TraceRecord *end() const;
};

class TraceSource {
  public:
    bool nextBlock(TraceSpan &out, int limit);
    void reset();
};

class Holder {
  public:
    void remember(TraceSource &source);

  private:
    TraceSpan keep;
};

// Violation: `a` is read after the second delivery into `b` recycled
// the source's block buffer.
int sumStaleAcrossDeliveries(TraceSource &source) {
    TraceSpan a;
    TraceSpan b;
    if (!source.nextBlock(a, 64))
        return 0;
    if (!source.nextBlock(b, 64))
        return 0;
    return static_cast<int>(a.end() - a.begin()); // lint:expect span-lifetime
}

// Violation: `firstBlock` kept across the refilling loop header.
int sumStaleInLoop(TraceSource &source) {
    TraceSpan firstBlock;
    TraceSpan block;
    int total = 0;
    if (!source.nextBlock(firstBlock, 64))
        return 0;
    while (source.nextBlock(block, 64))
        total += static_cast<int>(block.begin() - firstBlock.begin()); // lint:expect span-lifetime
    return total;
}

// Violation: a borrowed span stored into a member outlives the scope
// that guarantees the source is alive.
void Holder::remember(TraceSource &source) {
    TraceSpan span;
    if (!source.nextBlock(span, 32))
        return;
    keep = span; // lint:expect span-lifetime
}

// Clean: the failure branch of a negated probe leaves earlier spans
// valid (the source.hpp contract), and returning a span BY VALUE is
// the documented pass-through idiom.
TraceSpan firstOrEmpty(TraceSource &source) {
    TraceSpan first;
    TraceSpan probe;
    if (!source.nextBlock(first, 64))
        return TraceSpan();
    if (!source.nextBlock(probe, 1))
        return first;
    return TraceSpan();
}

// Suppressed: this helper is only ever handed vector-backed sources,
// whose spans survive later deliveries.
int vectorBackedOnly(TraceSource &source) {
    TraceSpan a;
    TraceSpan b;
    if (!source.nextBlock(a, 64))
        return 0;
    if (!source.nextBlock(b, 64))
        return 0;
    // Vector-backed source by construction in this harness; spans are
    // stable across deliveries. lint:allow span-lifetime
    return static_cast<int>(b.begin() - a.begin());
}
