// Seeded-violation fixture for scripts/lint_project.py --self-test.
//
// This file is never compiled and never linted as part of the tree
// (the linter skips tests/); it exists so ctest `lint_project_selftest`
// can prove every rule actually fires. Each block below plants exactly
// the bug its rule exists to catch — if a linter refactor stops
// flagging one of them, the self-test fails.

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <unordered_map>

#include "common/io.hpp"
#include "trace/trace_io.hpp"

namespace vpsim_lint_fixture
{

void
seededStatusDiscard(const std::vector<vpsim::TraceRecord> &records)
{
    // [status-discard] A write whose failure vanishes: the sweep would
    // publish numbers from a trace that never landed on disk.
    vpsim::writeTrace("/tmp/fixture.vptrace", records); // lint:expect status-discard

    // Consumed calls must NOT fire.
    const vpsim::Status kept =
        vpsim::writeTrace("/tmp/fixture2.vptrace", records);
    if (!kept.isOk())
        return;

    // Justified discard must NOT fire either.
    // Cleanup is best-effort; failure changes nothing.
    (void)vpsim::io::removeFile("/tmp/fixture.vptrace");
}

void
seededAmbiguousMembers()
{
    // [status-discard] flush() is ambiguous (std::ostream has one
    // too), but on an io::File receiver the dropped Status means a
    // torn file can go unnoticed.
    vpsim::io::File file;
    file.flush(); // lint:expect status-discard

    // The same member names on std types must NOT fire: the linter
    // resolves the receiver's declared type before flagging.
    std::ofstream out("/tmp/fixture.log");
    out.flush();
    std::atomic<bool> done{false};
    done.store(true, std::memory_order_release);
}

std::uint64_t
seededNondeterminism()
{
    // [sim-determinism] A wall-clock/libc-rand seed makes every run
    // differ; reproduced figures stop being reproducible.
    std::uint64_t seed = static_cast<std::uint64_t>(time(nullptr)); // lint:expect sim-determinism
    seed ^= static_cast<std::uint64_t>(rand()); // lint:expect sim-determinism
    return seed;
}

double
seededUnorderedOutput()
{
    // [unordered-iter] Unspecified visit order feeding an accumulated
    // double: FP addition is not associative, so the CSV cell depends
    // on the stdlib's hash layout.
    std::unordered_map<int, double> cells;
    double total = 0.0;
    for (const auto &entry : cells) // lint:expect unordered-iter
        total += entry.second;

    // Suppressed, justified iteration must NOT fire.
    // lint:allow unordered-iter — count is order-independent.
    for (const auto &entry : cells)
        total += 1.0 * (entry.first != 0);
    return total;
}

// Fixed FP class: a FUNCTION whose return type is an unordered map
// must not register its NAME as a container variable. The range-for
// below walks a same-named ORDERED vector and must stay quiet.
std::unordered_map<int, double> snapshotCells();

double
sumOrderedSnapshot(const std::vector<double> &snapshotCells)
{
    double total = 0.0;
    for (double cell : snapshotCells)
        total += cell;
    return total;
}

// Fixed FP class: the embedded quotes in a raw string used to pop the
// stripper's string state early, leaking the literal's text — here a
// phantom unordered_map declaration — into the scanned code, which
// then flagged the ordered loop below.
inline const char *
manifestTemplate()
{
    return R"json({"kind": "std::unordered_map<int, double> phantomCells;"})json";
}

double
sumOrderedCells(const std::vector<double> &phantomCells)
{
    double total = 0.0;
    for (double cell : phantomCells)
        total += cell;
    return total;
}

class SeededRawMutex
{
    // [raw-mutex] Invisible to the thread-safety analysis; GUARDED_BY
    // on members protected by this lock could never be checked.
    std::mutex rawMutex; // lint:expect raw-mutex
};

std::uint64_t
seededPerRecordLoop(vpsim::TraceSource &source)
{
    // [trace-per-record] The deprecated one-record shim in a loop: a
    // virtual call per instruction where nextBlock() would amortize
    // it over a whole span.
    vpsim::TraceRecord record;
    std::uint64_t count = 0;
    while (source.next(record)) // lint:expect trace-per-record
        ++count;

    // The batched API must NOT fire.
    vpsim::TraceSpan block;
    while (source.nextBlock(block))
        count += block.size();

    // std::next and other free next() calls must NOT fire either.
    std::vector<int> values{1, 2, 3};
    count += static_cast<std::uint64_t>(*std::next(values.begin()));

    // Suppressed, justified shim use must NOT fire.
    // lint:allow trace-per-record — fixture models a measured baseline.
    while (source.next(record))
        ++count;
    return count;
}

std::uint64_t
seededWholeTraceMaterialization(vpsim::TraceSource &source)
{
    // [trace-materialize] Buffering the whole trace: on the streaming
    // pipeline this is the difference between a bounded window and an
    // OOM on a 1B-instruction input.
    std::vector<vpsim::TraceRecord> storage;
    const vpsim::TraceSpan all = vpsim::materializeTrace(source, storage); // lint:expect trace-materialize

    // The records() accessor materializes just the same.
    vpsim::VectorTraceSource vec({});
    std::uint64_t count = vec.records().size(); // lint:expect trace-materialize

    // A local named `records` holding a span must NOT fire: only the
    // member call and the free function count as materialization.
    const vpsim::TraceSpan records = all;
    count += records.size();

    // Suppressed, justified materialization must NOT fire.
    // lint:allow trace-materialize — fixture input is known-small.
    const vpsim::TraceSpan again = vpsim::materializeTrace(source, storage);
    return count + again.size();
}

} // namespace vpsim_lint_fixture
