/**
 * @file
 * Tests for the VM: memory, program builder (label resolution, pseudo-ops)
 * and interpreter semantics for every opcode.
 */

#include <gtest/gtest.h>

#include "vm/interpreter.hpp"
#include "vm/memory.hpp"
#include "vm/program_builder.hpp"

namespace vpsim
{
namespace
{

using R = RegIndex;

/** Run a builder-made program to halt and return the interpreter. */
Interpreter
runToHalt(ProgramBuilder &b, Memory mem = {})
{
    static std::vector<Program> keep_alive;
    keep_alive.push_back(b.build());
    Interpreter interp(keep_alive.back(), std::move(mem));
    const auto result = interp.run(100000);
    EXPECT_TRUE(result.halted) << "program did not halt";
    return interp;
}

TEST(Memory, ReadsZeroWhenUntouched)
{
    Memory mem;
    EXPECT_EQ(mem.read8(0x1234), 0u);
    EXPECT_EQ(mem.read64(0xffff0000), 0u);
    EXPECT_EQ(mem.residentPages(), 0u);
}

TEST(Memory, ByteRoundTrip)
{
    Memory mem;
    mem.write8(0x42, 0xab);
    EXPECT_EQ(mem.read8(0x42), 0xabu);
}

TEST(Memory, WordRoundTripLittleEndian)
{
    Memory mem;
    mem.write64(0x100, 0x0123456789abcdefull);
    EXPECT_EQ(mem.read64(0x100), 0x0123456789abcdefull);
    EXPECT_EQ(mem.read8(0x100), 0xefu) << "little-endian byte order";
    EXPECT_EQ(mem.read8(0x107), 0x01u);
}

TEST(Memory, CrossPageWord)
{
    Memory mem;
    const Addr addr = 0x1ffd; // straddles a 4 KiB page boundary
    mem.write64(addr, 0x1122334455667788ull);
    EXPECT_EQ(mem.read64(addr), 0x1122334455667788ull);
    EXPECT_EQ(mem.residentPages(), 2u);
}

TEST(Memory, WriteWordsBulk)
{
    Memory mem;
    mem.writeWords(0x200, {1, 2, 3});
    EXPECT_EQ(mem.read64(0x200), 1u);
    EXPECT_EQ(mem.read64(0x208), 2u);
    EXPECT_EQ(mem.read64(0x210), 3u);
}

TEST(Interpreter, AluArithmetic)
{
    ProgramBuilder b("t");
    b.li(3, 7);
    b.li(4, 5);
    b.add(5, 3, 4);
    b.sub(6, 3, 4);
    b.mul(7, 3, 4);
    b.div(8, 3, 4);
    b.rem(9, 3, 4);
    b.halt();
    auto interp = runToHalt(b);
    EXPECT_EQ(interp.reg(5), 12u);
    EXPECT_EQ(interp.reg(6), 2u);
    EXPECT_EQ(interp.reg(7), 35u);
    EXPECT_EQ(interp.reg(8), 1u);
    EXPECT_EQ(interp.reg(9), 2u);
}

TEST(Interpreter, SignedArithmetic)
{
    ProgramBuilder b("t");
    b.li(3, -12);
    b.li(4, 5);
    b.div(5, 3, 4);
    b.rem(6, 3, 4);
    b.srai(7, 3, 1);
    b.halt();
    auto interp = runToHalt(b);
    EXPECT_EQ(static_cast<std::int64_t>(interp.reg(5)), -2);
    EXPECT_EQ(static_cast<std::int64_t>(interp.reg(6)), -2);
    EXPECT_EQ(static_cast<std::int64_t>(interp.reg(7)), -6);
}

TEST(Interpreter, DivisionByZeroIsDefined)
{
    ProgramBuilder b("t");
    b.li(3, 42);
    b.li(4, 0);
    b.div(5, 3, 4);
    b.rem(6, 3, 4);
    b.halt();
    auto interp = runToHalt(b);
    EXPECT_EQ(interp.reg(5), ~Value{0}) << "div by zero: all ones";
    EXPECT_EQ(interp.reg(6), 42u) << "rem by zero: dividend";
}

TEST(Interpreter, LogicAndShifts)
{
    ProgramBuilder b("t");
    b.li(3, 0b1100);
    b.li(4, 0b1010);
    b.and_(5, 3, 4);
    b.or_(6, 3, 4);
    b.xor_(7, 3, 4);
    b.li(8, 2);
    b.sll(9, 3, 8);
    b.srl(10, 3, 8);
    b.halt();
    auto interp = runToHalt(b);
    EXPECT_EQ(interp.reg(5), 0b1000u);
    EXPECT_EQ(interp.reg(6), 0b1110u);
    EXPECT_EQ(interp.reg(7), 0b0110u);
    EXPECT_EQ(interp.reg(9), 0b110000u);
    EXPECT_EQ(interp.reg(10), 0b11u);
}

TEST(Interpreter, Comparisons)
{
    ProgramBuilder b("t");
    b.li(3, -1);
    b.li(4, 1);
    b.slt(5, 3, 4);   // -1 < 1 signed
    b.sltu(6, 3, 4);  // huge unsigned < 1? no
    b.slti(7, 3, 0);  // -1 < 0
    b.halt();
    auto interp = runToHalt(b);
    EXPECT_EQ(interp.reg(5), 1u);
    EXPECT_EQ(interp.reg(6), 0u);
    EXPECT_EQ(interp.reg(7), 1u);
}

TEST(Interpreter, LuiShifts16)
{
    ProgramBuilder b("t");
    b.lui(3, 0x12);
    b.halt();
    auto interp = runToHalt(b);
    EXPECT_EQ(interp.reg(3), 0x120000u);
}

TEST(Interpreter, RegisterZeroStaysZero)
{
    ProgramBuilder b("t");
    b.li(0, 99);
    b.addi(3, 0, 1);
    b.halt();
    auto interp = runToHalt(b);
    EXPECT_EQ(interp.reg(0), 0u);
    EXPECT_EQ(interp.reg(3), 1u);
}

TEST(Interpreter, LoadsAndStores)
{
    ProgramBuilder b("t");
    b.li(3, 0x10000);
    b.li(4, 0xdead);
    b.st(4, 3, 8);
    b.ld(5, 3, 8);
    b.sb(4, 3, 0);
    b.lbu(6, 3, 0);
    b.halt();
    auto interp = runToHalt(b);
    EXPECT_EQ(interp.reg(5), 0xdeadu);
    EXPECT_EQ(interp.reg(6), 0xadu) << "byte store truncates";
    EXPECT_EQ(interp.memory().read64(0x10008), 0xdeadu);
}

TEST(Interpreter, InitialMemoryImageVisible)
{
    Memory mem;
    mem.write64(0x20000, 1234);
    ProgramBuilder b("t");
    b.li(3, 0x20000);
    b.ld(4, 3, 0);
    b.halt();
    auto interp = runToHalt(b, std::move(mem));
    EXPECT_EQ(interp.reg(4), 1234u);
}

TEST(Interpreter, BranchesTakenAndNot)
{
    ProgramBuilder b("t");
    Label skip = b.newLabel();
    Label out = b.newLabel();
    b.li(3, 1);
    b.li(4, 1);
    b.beq(3, 4, skip);
    b.li(5, 111); // skipped
    b.bind(skip);
    b.li(6, 222);
    b.bne(3, 4, out); // not taken
    b.li(7, 333);
    b.bind(out);
    b.halt();
    auto interp = runToHalt(b);
    EXPECT_EQ(interp.reg(5), 0u);
    EXPECT_EQ(interp.reg(6), 222u);
    EXPECT_EQ(interp.reg(7), 333u);
}

TEST(Interpreter, SignedVsUnsignedBranches)
{
    ProgramBuilder b("t");
    Label a = b.newLabel();
    Label done = b.newLabel();
    b.li(3, -1);
    b.li(4, 1);
    b.blt(3, 4, a);   // signed: taken
    b.halt();
    b.bind(a);
    b.li(5, 1);
    b.bltu(3, 4, done); // unsigned: 0xfff... < 1 is false, not taken
    b.li(6, 1);
    b.bind(done);
    b.halt();
    auto interp = runToHalt(b);
    EXPECT_EQ(interp.reg(5), 1u);
    EXPECT_EQ(interp.reg(6), 1u);
}

TEST(Interpreter, LoopExecutes)
{
    ProgramBuilder b("t");
    Label loop = b.newLabel();
    b.li(3, 0);        // sum
    b.li(4, 10);       // counter
    b.bind(loop);
    b.add(3, 3, 4);
    b.addi(4, 4, -1);
    b.bne(4, 0, loop);
    b.halt();
    auto interp = runToHalt(b);
    EXPECT_EQ(interp.reg(3), 55u);
}

TEST(Interpreter, CallAndReturn)
{
    ProgramBuilder b("t");
    Label fn = b.newLabel();
    Label main_code = b.newLabel();
    b.j(main_code);
    b.bind(fn);
    b.addi(22, 22, 100); // a0 += 100
    b.ret();
    b.bind(main_code);
    b.li(22, 5);
    b.call(fn);
    b.call(fn);
    b.halt();
    auto interp = runToHalt(b);
    EXPECT_EQ(interp.reg(22), 205u);
}

TEST(Interpreter, JumpTableViaJalr)
{
    ProgramBuilder b("t");
    Label case0 = b.newLabel();
    Label case1 = b.newLabel();
    Label done = b.newLabel();
    Label start = b.newLabel();
    b.j(start);
    b.bind(case0);
    b.li(5, 100);
    b.j(done);
    b.bind(case1);
    b.li(5, 200);
    b.j(done);
    b.bind(start);
    // table[2] in memory at 0x30000
    b.li(3, 0x30000);
    b.la(4, case1);
    b.st(4, 3, 8);
    b.la(4, case0);
    b.st(4, 3, 0);
    // select case 1
    b.li(6, 1);
    b.slli(6, 6, 3);
    b.add(6, 6, 3);
    b.ld(6, 6, 0);
    b.jr(6);
    b.bind(done);
    b.halt();
    auto interp = runToHalt(b);
    EXPECT_EQ(interp.reg(5), 200u);
}

TEST(Interpreter, TraceRecordsCarryValues)
{
    ProgramBuilder b("t");
    b.li(3, 41);
    b.addi(3, 3, 1);
    b.halt();
    Program prog = b.build();
    std::vector<TraceRecord> trace;
    Interpreter interp(prog, Memory{});
    interp.run(0, &trace);
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace[0].result, 41u);
    EXPECT_EQ(trace[1].result, 42u);
    EXPECT_EQ(trace[1].rs1, 3);
    EXPECT_EQ(trace[2].op, OpCode::Halt);
}

TEST(Interpreter, TraceBranchOutcomes)
{
    ProgramBuilder b("t");
    Label loop = b.newLabel();
    b.li(3, 2);
    b.bind(loop);
    b.addi(3, 3, -1);
    b.bne(3, 0, loop);
    b.halt();
    Program prog = b.build();
    std::vector<TraceRecord> trace;
    Interpreter interp(prog, Memory{});
    interp.run(0, &trace);
    // li, addi, bne(taken), addi, bne(not), halt
    ASSERT_EQ(trace.size(), 6u);
    EXPECT_TRUE(trace[2].taken);
    EXPECT_EQ(trace[2].nextPc, trace[1].pc);
    EXPECT_FALSE(trace[4].taken);
    EXPECT_EQ(trace[4].nextPc, trace[4].fallThrough());
}

TEST(Interpreter, FuelLimitStopsRun)
{
    ProgramBuilder b("t");
    Label loop = b.newLabel();
    b.bind(loop);
    b.addi(3, 3, 1);
    b.j(loop);
    Program prog = b.build();
    Interpreter interp(prog, Memory{});
    const auto result = interp.run(500);
    EXPECT_EQ(result.executed, 500u);
    EXPECT_FALSE(result.halted);
}

TEST(Interpreter, RunCanResume)
{
    ProgramBuilder b("t");
    Label loop = b.newLabel();
    b.bind(loop);
    b.addi(3, 3, 1);
    b.j(loop);
    Program prog = b.build();
    Interpreter interp(prog, Memory{});
    interp.run(100);
    interp.run(100);
    EXPECT_EQ(interp.reg(3), 100u) << "half the instructions are addi";
}

TEST(Interpreter, ShiftAmountsAreMasked)
{
    ProgramBuilder b("t");
    b.li(3, 1);
    b.li(4, 65);       // 65 & 63 == 1
    b.sll(5, 3, 4);
    b.srli(6, 3, 64);  // 64 & 63 == 0: unchanged
    b.halt();
    auto interp = runToHalt(b);
    EXPECT_EQ(interp.reg(5), 2u);
    EXPECT_EQ(interp.reg(6), 1u);
}

TEST(Interpreter, LuiAndOriBuildWideConstants)
{
    ProgramBuilder b("t");
    b.lui(3, 0x1234);
    b.ori(3, 3, 0x5678);
    b.halt();
    auto interp = runToHalt(b);
    EXPECT_EQ(interp.reg(3), 0x12345678u);
}

TEST(Interpreter, ByteLoadsZeroExtend)
{
    ProgramBuilder b("t");
    b.li(3, 0x10000);
    b.li(4, -1);       // 0xff..ff
    b.sb(4, 3, 0);
    b.lbu(5, 3, 0);
    b.halt();
    auto interp = runToHalt(b);
    EXPECT_EQ(interp.reg(5), 0xffu);
}

TEST(Interpreter, UnalignedWordAccess)
{
    ProgramBuilder b("t");
    b.li(3, 0x10003);  // not 8-aligned
    b.li(4, 0x1122334455667788);
    b.st(4, 3, 0);
    b.ld(5, 3, 0);
    b.halt();
    auto interp = runToHalt(b);
    EXPECT_EQ(interp.reg(5), 0x1122334455667788u);
}

TEST(Interpreter, NegativeImmediateAddressing)
{
    ProgramBuilder b("t");
    b.li(3, 0x10010);
    b.li(4, 77);
    b.st(4, 3, -16);
    b.li(5, 0x10000);
    b.ld(6, 5, 0);
    b.halt();
    auto interp = runToHalt(b);
    EXPECT_EQ(interp.reg(6), 77u);
}

TEST(ProgramBuilderTest, ForwardAndBackwardLabels)
{
    ProgramBuilder b("t");
    Label fwd = b.newLabel();
    b.j(fwd);
    b.nop();
    b.bind(fwd);
    b.halt();
    Program prog = b.build();
    EXPECT_EQ(prog.at(0).target, 2u);
}

TEST(ProgramBuilderTest, BoundAddrMatchesPc)
{
    ProgramBuilder b("t", 0x2000);
    b.nop();
    Label here = b.newLabel();
    b.bind(here);
    b.halt();
    EXPECT_EQ(b.boundAddr(here), 0x2004u);
}

TEST(ProgramBuilderTest, PcMapping)
{
    ProgramBuilder b("t", 0x1000);
    b.nop();
    b.nop();
    b.halt();
    Program prog = b.build();
    EXPECT_EQ(prog.pcOf(2), 0x1008u);
    EXPECT_EQ(prog.indexOf(0x1004), 1u);
    EXPECT_TRUE(prog.contains(0x1008));
    EXPECT_FALSE(prog.contains(0x100c));
    EXPECT_FALSE(prog.contains(0x1002));
}

TEST(ProgramBuilderTest, ListingShowsDisassembly)
{
    ProgramBuilder b("t");
    b.li(3, 7);
    b.halt();
    Program prog = b.build();
    const std::string listing = prog.listing();
    EXPECT_NE(listing.find("addi r3, r0, 7"), std::string::npos);
    EXPECT_NE(listing.find("halt"), std::string::npos);
}

} // namespace
} // namespace vpsim
