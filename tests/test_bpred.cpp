/**
 * @file
 * Tests for the branch predictors: the perfect oracle and the 2-level
 * PAp BTB (allocation, pattern learning, target prediction, replacement,
 * return address stack).
 */

#include <gtest/gtest.h>

#include "bpred/branch_predictor.hpp"
#include "bpred/two_level.hpp"

namespace vpsim
{
namespace
{

/** Build a conditional-branch record. */
TraceRecord
branchRec(Addr pc, bool taken, Addr target)
{
    TraceRecord rec;
    rec.pc = pc;
    rec.op = OpCode::Bne;
    rec.rs1 = 3;
    rec.rs2 = 0;
    rec.taken = taken;
    rec.nextPc = taken ? target : pc + instBytes;
    return rec;
}

/** Build a direct-jump record. */
TraceRecord
jumpRec(Addr pc, Addr target, RegIndex rd = 0)
{
    TraceRecord rec;
    rec.pc = pc;
    rec.op = OpCode::Jal;
    rec.rd = rd;
    rec.taken = true;
    rec.nextPc = target;
    return rec;
}

/** Build an indirect-jump record (jalr). */
TraceRecord
jalrRec(Addr pc, Addr target, RegIndex rd, RegIndex rs1)
{
    TraceRecord rec;
    rec.pc = pc;
    rec.op = OpCode::Jalr;
    rec.rd = rd;
    rec.rs1 = rs1;
    rec.taken = true;
    rec.nextPc = target;
    return rec;
}

TEST(PerfectPredictor, EchoesTheTrace)
{
    PerfectBranchPredictor oracle;
    const TraceRecord taken = branchRec(0x100, true, 0x200);
    const TraceRecord not_taken = branchRec(0x100, false, 0x200);
    EXPECT_TRUE(BranchPredictor::correct(taken, oracle.predict(taken)));
    EXPECT_TRUE(
        BranchPredictor::correct(not_taken, oracle.predict(not_taken)));
}

TEST(TwoLevelBtb, ColdPredictsNotTaken)
{
    TwoLevelPApPredictor bpred;
    const TraceRecord rec = branchRec(0x100, true, 0x400);
    const BranchPrediction p = bpred.predict(rec);
    EXPECT_FALSE(p.btbHit);
    EXPECT_FALSE(p.taken);
    EXPECT_FALSE(BranchPredictor::correct(rec, p));
}

TEST(TwoLevelBtb, LearnsAlwaysTakenBranch)
{
    TwoLevelPApPredictor bpred;
    const TraceRecord rec = branchRec(0x100, true, 0x400);
    for (int i = 0; i < 6; ++i) {
        const BranchPrediction p = bpred.predict(rec);
        bpred.update(rec, p);
    }
    const BranchPrediction p = bpred.predict(rec);
    EXPECT_TRUE(p.btbHit);
    EXPECT_TRUE(p.taken);
    EXPECT_EQ(p.target, 0x400u);
}

TEST(TwoLevelBtb, LearnsAlternatingPattern)
{
    // A 2-level predictor with history must learn T,N,T,N perfectly;
    // a plain 2-bit counter cannot.
    TwoLevelPApPredictor bpred;
    unsigned correct_late = 0;
    for (int i = 0; i < 200; ++i) {
        const TraceRecord rec = branchRec(0x100, i % 2 == 0, 0x400);
        const BranchPrediction p = bpred.predict(rec);
        bpred.update(rec, p);
        if (i >= 100 && BranchPredictor::correct(rec, p))
            ++correct_late;
    }
    EXPECT_EQ(correct_late, 100u)
        << "4-bit history must capture a period-2 pattern exactly";
}

TEST(TwoLevelBtb, LearnsLoopExitPattern)
{
    // 7 taken then 1 not-taken (an 8-iteration loop): PAp history of 4
    // bits can distinguish the all-taken context from the about-to-exit
    // context only partially; accuracy must still be high.
    TwoLevelPApPredictor bpred;
    unsigned correct_late = 0;
    for (int i = 0; i < 800; ++i) {
        const TraceRecord rec = branchRec(0x100, i % 8 != 7, 0x400);
        const BranchPrediction p = bpred.predict(rec);
        bpred.update(rec, p);
        if (i >= 400 && BranchPredictor::correct(rec, p))
            ++correct_late;
    }
    EXPECT_GE(correct_late, 300u) << "at least 75% on a loop pattern";
}

TEST(TwoLevelBtb, PredictsJumpTargets)
{
    TwoLevelPApPredictor bpred;
    const TraceRecord rec = jumpRec(0x100, 0x4000);
    const BranchPrediction cold = bpred.predict(rec);
    bpred.update(rec, cold);
    const BranchPrediction warm = bpred.predict(rec);
    EXPECT_TRUE(warm.taken);
    EXPECT_EQ(warm.target, 0x4000u);
    EXPECT_TRUE(BranchPredictor::correct(rec, warm));
}

TEST(TwoLevelBtb, IndirectTargetChangesMispredict)
{
    TwoLevelPApPredictor bpred;
    // A jalr that rotates between two targets: the BTB predicts the
    // last target and is wrong every time the target flips.
    unsigned wrong = 0;
    for (int i = 0; i < 20; ++i) {
        const TraceRecord rec =
            jalrRec(0x100, i % 2 ? 0x4000 : 0x8000, 0, 5);
        const BranchPrediction p = bpred.predict(rec);
        bpred.update(rec, p);
        if (i >= 2 && !BranchPredictor::correct(rec, p))
            ++wrong;
    }
    EXPECT_EQ(wrong, 18u);
}

TEST(TwoLevelBtb, ReturnAddressStackPairsCallsAndReturns)
{
    TwoLevelPApPredictor bpred;
    // call from A (link r1), call from B, then the two returns.
    const TraceRecord call_a = jumpRec(0x100, 0x4000, 1);
    const TraceRecord call_b = jumpRec(0x4008, 0x5000, 1);
    const TraceRecord ret_b = jalrRec(0x5010, 0x400c, 0, 1);
    const TraceRecord ret_a = jalrRec(0x4020, 0x104, 0, 1);

    for (const TraceRecord *rec : {&call_a, &call_b, &ret_b, &ret_a}) {
        const BranchPrediction p = bpred.predict(*rec);
        if (rec->op == OpCode::Jalr) {
            EXPECT_TRUE(BranchPredictor::correct(*rec, p))
                << "RAS must predict nested returns exactly";
        }
        bpred.update(*rec, p);
    }
}

TEST(TwoLevelBtb, RecursiveReturnsViaRas)
{
    TwoLevelPApPredictor bpred;
    // Recursive call from one site, depth 8: all returns go to the same
    // address and must all be predicted by the stack.
    const TraceRecord call = jumpRec(0x100, 0x100, 1); // self-recursive
    for (int i = 0; i < 8; ++i) {
        const BranchPrediction p = bpred.predict(call);
        bpred.update(call, p);
    }
    const TraceRecord ret = jalrRec(0x200, 0x104, 0, 1);
    unsigned correct = 0;
    for (int i = 0; i < 8; ++i) {
        const BranchPrediction p = bpred.predict(ret);
        bpred.update(ret, p);
        correct += BranchPredictor::correct(ret, p) ? 1 : 0;
    }
    EXPECT_EQ(correct, 8u);
}

TEST(TwoLevelBtb, NotTakenBranchesAreNotAllocated)
{
    TwoLevelPApPredictor bpred;
    const TraceRecord rec = branchRec(0x100, false, 0x400);
    for (int i = 0; i < 4; ++i) {
        const BranchPrediction p = bpred.predict(rec);
        bpred.update(rec, p);
        EXPECT_TRUE(BranchPredictor::correct(rec, p))
            << "not-taken prediction on a BTB miss is correct here";
    }
    EXPECT_EQ(bpred.predictions(), 4u);
    EXPECT_EQ(bpred.correctPredictions(), 4u);
}

TEST(TwoLevelBtb, SetConflictEvictsLru)
{
    TwoLevelConfig config;
    config.entries = 4; // 2 sets x 2 ways
    config.ways = 2;
    TwoLevelPApPredictor bpred(config);
    // Three taken branches mapping to the same set (stride = numSets *
    // instBytes = 2 * 4 = 8 bytes).
    const TraceRecord a = branchRec(0x100, true, 0x400);
    const TraceRecord b = branchRec(0x108, true, 0x400);
    const TraceRecord c = branchRec(0x110, true, 0x400);
    for (const TraceRecord *rec : {&a, &b, &c}) {
        const BranchPrediction p = bpred.predict(*rec);
        bpred.update(*rec, p);
    }
    // "a" was least recently used and must be gone.
    EXPECT_FALSE(bpred.predict(a).btbHit);
    EXPECT_TRUE(bpred.predict(c).btbHit);
}

TEST(TwoLevelBtb, AccuracyStatistics)
{
    TwoLevelPApPredictor bpred;
    const TraceRecord rec = branchRec(0x100, true, 0x400);
    // PAp warms one pattern-table counter per distinct history, so an
    // always-taken branch pays ~6 cold mispredictions before the
    // history register saturates at 1111.
    for (int i = 0; i < 40; ++i) {
        const BranchPrediction p = bpred.predict(rec);
        bpred.update(rec, p);
    }
    EXPECT_EQ(bpred.predictions(), 40u);
    EXPECT_GT(bpred.accuracy(), 0.75);
    EXPECT_LT(bpred.accuracy(), 1.0) << "the cold miss counts";
    bpred.reset();
    EXPECT_EQ(bpred.predictions(), 0u);
    EXPECT_DOUBLE_EQ(bpred.accuracy(), 1.0);
}

TEST(TwoLevelBtb, BadConfigurationDies)
{
    TwoLevelConfig config;
    config.entries = 10;
    config.ways = 3;
    EXPECT_EXIT(TwoLevelPApPredictor{config},
                ::testing::ExitedWithCode(1), "divide evenly");
}

TEST(TwoLevelBtb, NonControlQueryPanics)
{
    TwoLevelPApPredictor bpred;
    TraceRecord rec;
    rec.op = OpCode::Add;
    EXPECT_DEATH(bpred.predict(rec), "non-control");
}

} // namespace
} // namespace vpsim
