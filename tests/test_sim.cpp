/**
 * @file
 * Tests for the experiment harness: standard options, trace capture
 * (benchmark subsets, scale/seed/skip), figure-table rendering, the
 * CSV exporter, benchmark-name validation, and SimRunner's deterministic
 * parallel grid execution.
 */

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "core/ideal_machine.hpp"
#include "sim/sim_runner.hpp"

namespace vpsim
{
namespace
{

Options
parsedOptions(std::vector<const char *> args)
{
    args.insert(args.begin(), "bench");
    Options options;
    declareStandardOptions(options, 5000);
    options.parse(static_cast<int>(args.size()), args.data(), "test");
    return options;
}

BenchmarkTraces
capture(const Options &options)
{
    SimRunner runner(options);
    return runner.captureBenchmarks();
}

TEST(Harness, DefaultsCaptureAllEight)
{
    const Options options = parsedOptions({});
    const BenchmarkTraces bench = capture(options);
    EXPECT_EQ(bench.size(), 8u);
    for (std::size_t i = 0; i < bench.size(); ++i)
        EXPECT_EQ(bench.trace(i).size(), 5000u);
}

TEST(Harness, BenchmarkSubsetFilter)
{
    const Options options =
        parsedOptions({"--benchmarks", "go,vortex", "--insts", "2000"});
    const BenchmarkTraces bench = capture(options);
    ASSERT_EQ(bench.size(), 2u);
    EXPECT_EQ(bench.names[0], "go");
    EXPECT_EQ(bench.names[1], "vortex");
    EXPECT_EQ(bench.trace(0).size(), 2000u);
}

TEST(Harness, UnknownBenchmarkNameDies)
{
    const Options options =
        parsedOptions({"--benchmarks", "go,notabench"});
    EXPECT_DEATH(capture(options), "unknown benchmark 'notabench'");
    EXPECT_DEATH(capture(options), "valid names");
}

TEST(Harness, SkipDropsWarmup)
{
    const Options plain = parsedOptions({"--insts", "3000"});
    const Options skipped =
        parsedOptions({"--insts", "3000", "--skip", "1000"});
    const auto full = capture(plain);
    const auto warm = capture(skipped);
    ASSERT_EQ(warm.trace(0).size(), 3000u)
        << "--insts counts the measured window, not the warmup";
    // The warm trace must be the tail of a longer run: its first record
    // differs from the cold trace's first record in general, and its
    // seqs are renumbered densely.
    EXPECT_EQ(warm.trace(0)[0].seq, 0u);
    EXPECT_EQ(warm.trace(0)[2999].seq, 2999u);
}

TEST(Harness, ScaleAndSeedReachTheWorkloads)
{
    const Options seeded =
        parsedOptions({"--insts", "3000", "--seed", "7",
                       "--benchmarks", "compress"});
    const Options plain =
        parsedOptions({"--insts", "3000", "--benchmarks", "compress"});
    const auto a = capture(seeded);
    const auto b = capture(plain);
    bool differs = false;
    for (std::size_t i = 0; i < 3000 && !differs; ++i)
        differs = a.trace(0)[i].result != b.trace(0)[i].result;
    EXPECT_TRUE(differs);
}

TEST(Harness, TraceHandlesShareStorage)
{
    // BenchmarkTraces hands out shared_ptr handles; copying the struct
    // must not copy the (large) trace storage.
    const Options options =
        parsedOptions({"--insts", "2000", "--benchmarks", "go"});
    const BenchmarkTraces bench = capture(options);
    const BenchmarkTraces copy = bench;
    EXPECT_EQ(&copy.trace(0), &bench.trace(0));
}

TEST(Harness, FigureTableHasAverageRow)
{
    const std::string table = renderFigureTable(
        "t", {"a", "b"}, {"c1", "c2"},
        {{1.0, 2.0}, {3.0, 4.0}},
        [](double v) { return TablePrinter::numberCell(v, 1); });
    EXPECT_NE(table.find("avg"), std::string::npos);
    EXPECT_NE(table.find("2.0"), std::string::npos)
        << "column c1 average of 1 and 3";
    EXPECT_NE(table.find("3.0"), std::string::npos)
        << "column c2 average of 2 and 4";
}

TEST(Harness, CsvExportWritesTidyRows)
{
    const std::string path = "/tmp/vpsim_test_csv.csv";
    std::remove(path.c_str());
    const Options options = parsedOptions({"--csv", path.c_str()});
    maybeWriteCsv(options, "figX", {"go"}, {"BW=4", "BW=8"},
                  {{0.25, 0.5}});
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_EQ(content.str(), "figX,go,BW=4,0.25\nfigX,go,BW=8,0.5\n");
    std::remove(path.c_str());
}

TEST(Harness, CsvDisabledByDefault)
{
    const Options options = parsedOptions({});
    // Must be a no-op (no crash, no file named "").
    maybeWriteCsv(options, "figX", {"go"}, {"c"}, {{1.0}});
}

TEST(Harness, StallingUsesGrowWithBandwidth)
{
    // The Section 3 mechanism as a harness-level invariant: more fetch
    // bandwidth exposes at least as many stalling dependences.
    const Options options =
        parsedOptions({"--insts", "20000", "--benchmarks", "m88ksim"});
    const BenchmarkTraces bench = capture(options);
    IdealMachineConfig narrow;
    narrow.fetchRate = 4;
    IdealMachineConfig wide;
    wide.fetchRate = 40;
    const auto r_narrow = runIdealMachine(bench.trace(0), narrow);
    const auto r_wide = runIdealMachine(bench.trace(0), wide);
    EXPECT_GT(r_wide.stallingUses, r_narrow.stallingUses);
}

/** Figure 3.1-shaped grid under a given --jobs count. */
std::vector<std::vector<double>>
fig31Grid(const char *jobs)
{
    const Options options = parsedOptions(
        {"--insts", "4000", "--benchmarks", "go,compress,m88ksim",
         "--jobs", jobs});
    SimRunner runner(options);
    const BenchmarkTraces bench = runner.captureBenchmarks();
    const std::vector<unsigned> rates = {4, 8, 16};
    return runner.runGrid(bench.size(), rates.size(),
                          [&](std::size_t row, std::size_t col) {
                              IdealMachineConfig config;
                              config.fetchRate = rates[col];
                              return idealVpSpeedup(bench.trace(row),
                                                    config);
                          });
}

TEST(SimRunner, GridIsDeterministicAcrossJobCounts)
{
    // The acceptance property of the parallel runtime: cell placement is
    // preassigned, so the grid is bit-identical for any worker count.
    const auto serial = fig31Grid("1");
    const auto parallel = fig31Grid("8");
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t r = 0; r < serial.size(); ++r) {
        ASSERT_EQ(serial[r].size(), parallel[r].size());
        for (std::size_t c = 0; c < serial[r].size(); ++c)
            EXPECT_EQ(serial[r][c], parallel[r][c])
                << "cell (" << r << "," << c << ")";
    }
}

TEST(SimRunner, RunGridShapesOutput)
{
    const Options options = parsedOptions({"--jobs", "2"});
    SimRunner runner(options);
    const auto cells = runner.runGrid(
        3, 2, [](std::size_t row, std::size_t col) {
            return static_cast<double>(10 * row + col);
        });
    ASSERT_EQ(cells.size(), 3u);
    for (std::size_t r = 0; r < 3; ++r) {
        ASSERT_EQ(cells[r].size(), 2u);
        for (std::size_t c = 0; c < 2; ++c)
            EXPECT_EQ(cells[r][c], static_cast<double>(10 * r + c));
    }
}

TEST(SimRunner, NegativeJobsDies)
{
    const Options options = parsedOptions({"--jobs", "-3"});
    EXPECT_DEATH(SimRunner runner(options), "jobs");
}

/** A 2x2 grid whose (1,0) cell throws; other cells are 10*row+col. */
double
faultyCell(std::size_t row, std::size_t col)
{
    if (row == 1 && col == 0)
        throw std::runtime_error("injected cell failure");
    return static_cast<double>(10 * row + col);
}

TEST(SimRunner, ThrowingJobAbortsTheSweepByDefault)
{
    const Options options = parsedOptions({"--jobs", "2"});
    SimRunner runner(options);
    EXPECT_THROW(runner.runGrid(2, 2, faultyCell), std::runtime_error);
}

TEST(SimRunner, KeepGoingIsolatesTheFailureAsNan)
{
    const Options options =
        parsedOptions({"--jobs", "2", "--keep-going", "1"});
    SimRunner runner(options);
    const auto cells = runner.runGrid(2, 2, faultyCell);
    EXPECT_TRUE(std::isnan(cells[1][0]))
        << "the failed cell must be visibly absent, not silently zero";
    EXPECT_EQ(cells[0][0], 0.0);
    EXPECT_EQ(cells[0][1], 1.0);
    EXPECT_EQ(cells[1][1], 11.0);
    ASSERT_EQ(runner.failures().size(), 1u);
    EXPECT_EQ(runner.failures()[0].label, "cell[1][0]");
    EXPECT_NE(runner.failures()[0].error.find("injected cell failure"),
              std::string::npos);
}

TEST(SimRunner, ConcurrentFailureSnapshotsStayConsistent)
{
    // failures() takes a locked snapshot, so it is safe to poll from
    // another thread while 8 workers are recording failures. Under
    // TSan this is the regression test for the old unlocked const-ref
    // accessor; on any build it checks snapshot consistency: every
    // observed size must be a plausible prefix of the final list.
    const Options options =
        parsedOptions({"--jobs", "8", "--keep-going", "1"});
    SimRunner runner(options);

    std::atomic<bool> done{false};
    std::atomic<std::size_t> max_seen{0};
    std::thread observer([&] {
        while (!done.load(std::memory_order_acquire)) {
            const std::vector<JobFailure> snapshot = runner.failures();
            std::size_t prev = max_seen.load();
            while (prev < snapshot.size() &&
                   !max_seen.compare_exchange_weak(prev,
                                                   snapshot.size())) {
            }
            for (const JobFailure &failure : snapshot)
                EXPECT_NE(failure.error.find("flaky cell"),
                          std::string::npos);
            std::this_thread::yield();
        }
    });

    constexpr std::size_t rows = 8;
    constexpr std::size_t cols = 8;
    const auto cells =
        runner.runGrid(rows, cols, [](std::size_t row, std::size_t col) {
            if ((row + col) % 3 == 0)
                throw std::runtime_error("flaky cell");
            return static_cast<double>(10 * row + col);
        });
    done.store(true, std::memory_order_release);
    observer.join();

    std::size_t expected_failures = 0;
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            if ((r + c) % 3 == 0) {
                ++expected_failures;
                EXPECT_TRUE(std::isnan(cells[r][c]));
            } else {
                EXPECT_EQ(cells[r][c],
                          static_cast<double>(10 * r + c));
            }
        }
    }
    EXPECT_EQ(runner.failures().size(), expected_failures);
    EXPECT_LE(max_seen.load(), expected_failures)
        << "a snapshot saw more failures than ever existed";
}

TEST(SimRunner, ResumeWithoutCheckpointDies)
{
    // The combination is rejected at parse time (option validators),
    // before a SimRunner is ever constructed.
    EXPECT_DEATH(parsedOptions({"--resume", "1"}),
                 "--resume 1 requires --checkpoint");
}

TEST(SimRunner, SigintFlushesACheckpointAndResumeFinishes)
{
    const std::string ckpt = "/tmp/vpsim_test_ckpt_" +
                             std::to_string(::getpid()) + ".txt";
    std::remove(ckpt.c_str());

    // Interrupted sweep, in a death-test child: with --jobs 1 the grid
    // runs in submission order, so `job:2:sigint` lands after exactly
    // one finished cell. The runner must drain, flush the checkpoint,
    // and exit 128+SIGINT.
    const auto interrupted = [&] {
        const Options options = parsedOptions(
            {"--jobs", "1", "--checkpoint", ckpt.c_str(),
             "--fault-inject", "job:2:sigint"});
        SimRunner runner(options);
        runner.runGrid(2, 2, [](std::size_t row, std::size_t col) {
            return static_cast<double>(10 * row + col);
        });
    };
    EXPECT_EXIT(interrupted(), ::testing::ExitedWithCode(128 + SIGINT),
                "interrupted by signal 2.*1 of 4 cells checkpointed");
    ASSERT_TRUE(std::ifstream(ckpt).good())
        << "the interrupted run must leave a checkpoint behind";

    // Resume: the finished cell is served from the checkpoint (its job
    // never runs again), the rest compute, and values are identical to
    // an uninterrupted sweep.
    const Options options = parsedOptions(
        {"--jobs", "1", "--checkpoint", ckpt.c_str(), "--resume", "1"});
    SimRunner runner(options);
    std::atomic<int> cell_calls{0};
    const auto cells =
        runner.runGrid(2, 2, [&](std::size_t row, std::size_t col) {
            ++cell_calls;
            return static_cast<double>(10 * row + col);
        });
    EXPECT_EQ(runner.resumedCells(), 1u);
    EXPECT_EQ(cell_calls.load(), 3)
        << "resume must not recompute the checkpointed cell";
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            EXPECT_EQ(cells[r][c], static_cast<double>(10 * r + c));
    std::remove(ckpt.c_str());
}

} // namespace
} // namespace vpsim
