/**
 * @file
 * Tests for the experiment harness: standard options, trace capture
 * (benchmark subsets, scale/seed/skip), figure-table rendering, and the
 * CSV exporter.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/ideal_machine.hpp"
#include "sim/experiment.hpp"

namespace vpsim
{
namespace
{

Options
parsedOptions(std::vector<const char *> args)
{
    args.insert(args.begin(), "bench");
    Options options;
    declareStandardOptions(options, 5000);
    options.parse(static_cast<int>(args.size()), args.data(), "test");
    return options;
}

TEST(Harness, DefaultsCaptureAllEight)
{
    const Options options = parsedOptions({});
    const BenchmarkTraces bench = captureBenchmarks(options);
    EXPECT_EQ(bench.size(), 8u);
    for (const auto &trace : bench.traces)
        EXPECT_EQ(trace.size(), 5000u);
}

TEST(Harness, BenchmarkSubsetFilter)
{
    const Options options =
        parsedOptions({"--benchmarks", "go,vortex", "--insts", "2000"});
    const BenchmarkTraces bench = captureBenchmarks(options);
    ASSERT_EQ(bench.size(), 2u);
    EXPECT_EQ(bench.names[0], "go");
    EXPECT_EQ(bench.names[1], "vortex");
    EXPECT_EQ(bench.traces[0].size(), 2000u);
}

TEST(Harness, SkipDropsWarmup)
{
    const Options plain = parsedOptions({"--insts", "3000"});
    const Options skipped =
        parsedOptions({"--insts", "3000", "--skip", "1000"});
    const auto full = captureBenchmarks(plain);
    const auto warm = captureBenchmarks(skipped);
    ASSERT_EQ(warm.traces[0].size(), 3000u)
        << "--insts counts the measured window, not the warmup";
    // The warm trace must be the tail of a longer run: its first record
    // differs from the cold trace's first record in general, and its
    // seqs are renumbered densely.
    EXPECT_EQ(warm.traces[0][0].seq, 0u);
    EXPECT_EQ(warm.traces[0][2999].seq, 2999u);
}

TEST(Harness, ScaleAndSeedReachTheWorkloads)
{
    const Options seeded =
        parsedOptions({"--insts", "3000", "--seed", "7",
                       "--benchmarks", "compress"});
    const Options plain =
        parsedOptions({"--insts", "3000", "--benchmarks", "compress"});
    const auto a = captureBenchmarks(seeded);
    const auto b = captureBenchmarks(plain);
    bool differs = false;
    for (std::size_t i = 0; i < 3000 && !differs; ++i)
        differs = a.traces[0][i].result != b.traces[0][i].result;
    EXPECT_TRUE(differs);
}

TEST(Harness, FigureTableHasAverageRow)
{
    const std::string table = renderFigureTable(
        "t", {"a", "b"}, {"c1", "c2"},
        {{1.0, 2.0}, {3.0, 4.0}},
        [](double v) { return TablePrinter::numberCell(v, 1); });
    EXPECT_NE(table.find("avg"), std::string::npos);
    EXPECT_NE(table.find("2.0"), std::string::npos)
        << "column c1 average of 1 and 3";
    EXPECT_NE(table.find("3.0"), std::string::npos)
        << "column c2 average of 2 and 4";
}

TEST(Harness, CsvExportWritesTidyRows)
{
    const std::string path = "/tmp/vpsim_test_csv.csv";
    std::remove(path.c_str());
    const Options options = parsedOptions({"--csv", path.c_str()});
    maybeWriteCsv(options, "figX", {"go"}, {"BW=4", "BW=8"},
                  {{0.25, 0.5}});
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_EQ(content.str(), "figX,go,BW=4,0.25\nfigX,go,BW=8,0.5\n");
    std::remove(path.c_str());
}

TEST(Harness, CsvDisabledByDefault)
{
    const Options options = parsedOptions({});
    // Must be a no-op (no crash, no file named "").
    maybeWriteCsv(options, "figX", {"go"}, {"c"}, {{1.0}});
}

TEST(Harness, StallingUsesGrowWithBandwidth)
{
    // The Section 3 mechanism as a harness-level invariant: more fetch
    // bandwidth exposes at least as many stalling dependences.
    const Options options =
        parsedOptions({"--insts", "20000", "--benchmarks", "m88ksim"});
    const BenchmarkTraces bench = captureBenchmarks(options);
    IdealMachineConfig narrow;
    narrow.fetchRate = 4;
    IdealMachineConfig wide;
    wide.fetchRate = 40;
    const auto r_narrow = runIdealMachine(bench.traces[0], narrow);
    const auto r_wide = runIdealMachine(bench.traces[0], wide);
    EXPECT_GT(r_wide.stallingUses, r_narrow.stallingUses);
}

} // namespace
} // namespace vpsim
