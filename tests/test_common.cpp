/**
 * @file
 * Unit tests for the common infrastructure: saturating counters,
 * histograms, RNG, stats groups, table printing, and option parsing.
 */

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.hpp"
#include "common/histogram.hpp"
#include "common/io.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/sat_counter.hpp"
#include "common/stats.hpp"
#include "common/table_printer.hpp"

namespace vpsim
{
namespace
{

TEST(SatCounter, StartsNotSet)
{
    SatCounter counter(2);
    EXPECT_FALSE(counter.isSet());
    EXPECT_EQ(counter.value(), 0u);
}

TEST(SatCounter, SetsAtUpperHalf)
{
    SatCounter counter(2);
    counter.increment();
    EXPECT_FALSE(counter.isSet()) << "value 1 of 0..3 is lower half";
    counter.increment();
    EXPECT_TRUE(counter.isSet());
    counter.increment();
    EXPECT_TRUE(counter.isSaturated());
}

TEST(SatCounter, SaturatesHigh)
{
    SatCounter counter(2);
    for (int i = 0; i < 10; ++i)
        counter.increment();
    EXPECT_EQ(counter.value(), 3u);
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter counter(2);
    counter.decrement();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(SatCounter, HysteresisAcrossThreshold)
{
    SatCounter counter(2, 3);
    counter.decrement();
    EXPECT_TRUE(counter.isSet()) << "one miss from saturated stays set";
    counter.decrement();
    EXPECT_FALSE(counter.isSet());
}

TEST(SatCounter, WiderCountersWork)
{
    SatCounter counter(4);
    for (int i = 0; i < 7; ++i)
        counter.increment();
    EXPECT_FALSE(counter.isSet());
    counter.increment();
    EXPECT_TRUE(counter.isSet());
    EXPECT_EQ(counter.max(), 15u);
}

TEST(SatCounter, InitialValueClamped)
{
    SatCounter counter(2, 100);
    EXPECT_EQ(counter.value(), 3u);
}

TEST(SatCounter, ResetClears)
{
    SatCounter counter(2, 3);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
    EXPECT_FALSE(counter.isSet());
}

class SatCounterWidths : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SatCounterWidths, ThresholdIsHalfRange)
{
    const unsigned bits = GetParam();
    SatCounter counter(bits);
    const unsigned threshold = 1u << (bits - 1);
    for (unsigned i = 0; i < threshold - 1; ++i)
        counter.increment();
    EXPECT_FALSE(counter.isSet());
    counter.increment();
    EXPECT_TRUE(counter.isSet());
}

INSTANTIATE_TEST_SUITE_P(Widths, SatCounterWidths,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(Histogram, BucketsSamples)
{
    Histogram hist({1, 2, 3});
    hist.add(0);
    hist.add(1);
    hist.add(2);
    hist.add(3);
    hist.add(100);
    EXPECT_EQ(hist.bucketCount(0), 2u) << "0 and 1 share bucket <=1";
    EXPECT_EQ(hist.bucketCount(1), 1u);
    EXPECT_EQ(hist.bucketCount(2), 1u);
    EXPECT_EQ(hist.bucketCount(3), 1u) << "overflow bucket";
    EXPECT_EQ(hist.totalSamples(), 5u);
}

TEST(Histogram, Fractions)
{
    Histogram hist({4});
    for (int i = 0; i < 3; ++i)
        hist.add(1);
    hist.add(10);
    EXPECT_DOUBLE_EQ(hist.bucketFraction(0), 0.75);
    EXPECT_DOUBLE_EQ(hist.bucketFraction(1), 0.25);
}

TEST(Histogram, MeanTracksSamples)
{
    Histogram hist({100});
    hist.add(10);
    hist.add(20);
    hist.add(60);
    EXPECT_DOUBLE_EQ(hist.mean(), 30.0);
}

TEST(Histogram, WeightedSamples)
{
    Histogram hist({5});
    hist.add(2, 10);
    EXPECT_EQ(hist.bucketCount(0), 10u);
    EXPECT_DOUBLE_EQ(hist.mean(), 2.0);
}

TEST(Histogram, Labels)
{
    Histogram hist({1, 3, 7});
    EXPECT_EQ(hist.bucketLabel(0), "0-1");
    EXPECT_EQ(hist.bucketLabel(1), "2-3");
    EXPECT_EQ(hist.bucketLabel(2), "4-7");
    EXPECT_EQ(hist.bucketLabel(3), ">=8");
}

TEST(Histogram, MergeCombines)
{
    Histogram a({4});
    Histogram b({4});
    a.add(1);
    b.add(10);
    a.merge(b);
    EXPECT_EQ(a.totalSamples(), 2u);
    EXPECT_EQ(a.bucketCount(1), 1u);
}

TEST(Histogram, EmptyMeanIsZero)
{
    Histogram hist({4});
    EXPECT_DOUBLE_EQ(hist.mean(), 0.0);
    EXPECT_DOUBLE_EQ(hist.bucketFraction(0), 0.0);
}

TEST(Rng, Deterministic)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.nextRange(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= v == 3;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceIsRoughlyCalibrated)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.nextChance(1, 4) ? 1 : 0;
    EXPECT_GT(hits, 2100);
    EXPECT_LT(hits, 2900);
}

TEST(Stats, CounterBasics)
{
    Counter counter;
    ++counter;
    counter += 4;
    counter.increment();
    EXPECT_EQ(counter.value(), 6u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(Stats, GroupDumpContainsEntries)
{
    Counter hits;
    Counter total;
    hits += 3;
    total += 4;
    StatGroup group("vp");
    group.addCounter("hits", hits, "correct predictions");
    group.addRatio("accuracy", hits, total);
    const std::string dump = group.dump();
    EXPECT_NE(dump.find("vp.hits"), std::string::npos);
    EXPECT_NE(dump.find("3"), std::string::npos);
    EXPECT_NE(dump.find("0.75"), std::string::npos);
}

TEST(Stats, RatioWithZeroDenominator)
{
    Counter n;
    Counter d;
    StatGroup group("g");
    group.addRatio("ratio", n, d);
    EXPECT_NE(group.dump().find("0.0"), std::string::npos);
}

TEST(TablePrinterTest, RendersAlignedTable)
{
    TablePrinter table("Figure X", {"bench", "a", "b"});
    table.addRow({"go", "1.0", "2.0"});
    table.addSeparator();
    table.addRow({"avg", "1.5", "2.5"});
    const std::string out = table.render();
    EXPECT_NE(out.find("Figure X"), std::string::npos);
    EXPECT_NE(out.find("go"), std::string::npos);
    EXPECT_NE(out.find("avg"), std::string::npos);
}

TEST(TablePrinterTest, CellFormatters)
{
    EXPECT_EQ(TablePrinter::percentCell(0.335), "33.5%");
    EXPECT_EQ(TablePrinter::percentCell(0.335, 0), "34%");
    EXPECT_EQ(TablePrinter::numberCell(3.14159, 2), "3.14");
}

TEST(OptionsTest, DefaultsApply)
{
    Options opts;
    opts.declare("insts", "1000", "instruction budget");
    const char *argv[] = {"prog"};
    opts.parse(1, argv, "test");
    EXPECT_EQ(opts.getInt("insts"), 1000);
}

TEST(OptionsTest, ParsesBothForms)
{
    Options opts;
    opts.declare("a", "0", "");
    opts.declare("b", "0", "");
    const char *argv[] = {"prog", "--a", "5", "--b=7"};
    opts.parse(4, argv, "test");
    EXPECT_EQ(opts.getInt("a"), 5);
    EXPECT_EQ(opts.getInt("b"), 7);
}

TEST(OptionsTest, ListsAndBools)
{
    Options opts;
    opts.declare("benchmarks", "go,gcc", "");
    opts.declare("verbose", "false", "");
    const char *argv[] = {"prog", "--verbose", "true"};
    opts.parse(3, argv, "test");
    const auto list = opts.getList("benchmarks");
    ASSERT_EQ(list.size(), 2u);
    EXPECT_EQ(list[0], "go");
    EXPECT_TRUE(opts.getBool("verbose"));
}

TEST(OptionsTest, UnknownOptionDies)
{
    Options opts;
    opts.declare("a", "0", "");
    const char *argv[] = {"prog", "--bogus", "1"};
    EXPECT_EXIT(opts.parse(3, argv, "test"),
                ::testing::ExitedWithCode(1), "unknown option");
}

TEST(OptionsTest, BadIntegerDies)
{
    Options opts;
    opts.declare("n", "0", "");
    const char *argv[] = {"prog", "--n", "thirty"};
    opts.parse(3, argv, "test");
    EXPECT_EXIT(opts.getInt("n"), ::testing::ExitedWithCode(1),
                "expects an integer");
}

TEST(OptionsTest, FingerprintIsCanonicalAndFiltered)
{
    Options a;
    a.declare("insts", "1000", "");
    a.declare("jobs", "0", "");
    const char *argv_a[] = {"prog", "--jobs", "8"};
    a.parse(3, argv_a, "test");

    Options b;
    b.declare("jobs", "0", "");
    b.declare("insts", "1000", "");
    const char *argv_b[] = {"prog", "--insts=1000", "--jobs", "2"};
    b.parse(4, argv_b, "test");

    // Declaration order and explicit-vs-default must not matter, and
    // excluded (execution-only) options must not change the print.
    EXPECT_EQ(a.fingerprint({"jobs"}), b.fingerprint({"jobs"}));
    EXPECT_NE(a.fingerprint(), b.fingerprint())
        << "--jobs differs when not excluded";

    Options c;
    c.declare("insts", "1000", "");
    c.declare("jobs", "0", "");
    const char *argv_c[] = {"prog", "--insts", "2000"};
    c.parse(3, argv_c, "test");
    EXPECT_NE(a.fingerprint({"jobs"}), c.fingerprint({"jobs"}))
        << "a result-relevant option must change the fingerprint";
}

TEST(StatusTest, CarriesCodeAndMessage)
{
    EXPECT_EQ(Status::ok().code(), StatusCode::kOk);
    EXPECT_TRUE(Status::ok().isOk());
    const Status io = Status::error("disk trouble");
    EXPECT_EQ(io.code(), StatusCode::kIo)
        << "untyped errors default to the transient I/O class";
    const Status corrupt =
        Status::error(StatusCode::kCorrupt, "bad checksum");
    EXPECT_FALSE(corrupt.isOk());
    EXPECT_EQ(corrupt.code(), StatusCode::kCorrupt);
    EXPECT_EQ(corrupt.message(), "bad checksum");
    EXPECT_STREQ(statusCodeName(StatusCode::kCorrupt), "corrupt");
    EXPECT_STREQ(statusCodeName(StatusCode::kCanceled), "canceled");
}

TEST(Crc32Test, MatchesTheStandardCheckValue)
{
    // The classic CRC-32 check: crc32("123456789") == 0xCBF43926.
    EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
}

TEST(Crc32Test, IncrementalEqualsOneShot)
{
    const std::string data = "the quick brown fox jumps over";
    Crc32 incremental;
    incremental.update(data.data(), 10);
    incremental.update(data.data() + 10, data.size() - 10);
    EXPECT_EQ(incremental.value(), crc32(data.data(), data.size()));
    EXPECT_NE(crc32(data.data(), data.size()),
              crc32(data.data(), data.size() - 1));
}

/** Restores a clean (inactive) global fault injector on scope exit. */
struct InjectorGuard
{
    ~InjectorGuard() { io::configureFaultInjection(""); }
};

TEST(FaultInjector, FiresOnTheNthOperationOnce)
{
    InjectorGuard guard;
    io::configureFaultInjection("write:2:enospc,read:1:eio");
    EXPECT_EQ(io::faultInjector().next("write"), io::FaultKind::None);
    EXPECT_EQ(io::faultInjector().next("write"),
              io::FaultKind::Enospc);
    EXPECT_EQ(io::faultInjector().next("write"), io::FaultKind::None)
        << "a clause fires exactly once";
    EXPECT_EQ(io::faultInjector().next("read"), io::FaultKind::Eio);
    EXPECT_EQ(io::faultInjector().next("read"), io::FaultKind::None);
}

TEST(FaultInjector, BadSpecDies)
{
    EXPECT_EXIT(io::configureFaultInjection("write:1:frobnicate"),
                ::testing::ExitedWithCode(1), "unknown fault kind");
    EXPECT_EXIT(io::configureFaultInjection("teleport:1:eio"),
                ::testing::ExitedWithCode(1), "unknown fault-inject op");
    EXPECT_EXIT(io::configureFaultInjection("write:zero:eio"),
                ::testing::ExitedWithCode(1), "bad fault-inject");
}

TEST(IoFile, InjectedWriteFailureCarriesErrnoDetail)
{
    InjectorGuard guard;
    io::configureFaultInjection("write:1:enospc");
    io::File file;
    const std::string path = "/tmp/vpsim_io_enospc.bin";
    ASSERT_TRUE(file.openForWrite(path).isOk());
    const Status put = file.writeAll("abc", 3);
    ASSERT_FALSE(put.isOk());
    EXPECT_EQ(put.code(), StatusCode::kIo);
    EXPECT_NE(put.message().find("No space left on device"),
              std::string::npos)
        << put.message();
    EXPECT_NE(put.message().find(path), std::string::npos)
        << "errors must name the file: " << put.message();
    file.close();
    std::remove(path.c_str());
}

TEST(IoFile, TornWriteLosesTheTailSilently)
{
    InjectorGuard guard;
    io::configureFaultInjection("write:1:torn,seed:7");
    const std::string path = "/tmp/vpsim_io_torn.bin";
    io::File file;
    ASSERT_TRUE(file.openForWrite(path).isOk());
    std::vector<char> payload(1024, 'x');
    EXPECT_TRUE(file.writeAll(payload.data(), payload.size()).isOk())
        << "a torn write reports success, like a crash before fsync";
    EXPECT_TRUE(file.flush().isOk());
    file.close();

    io::File reread;
    ASSERT_TRUE(reread.openForRead(path).isOk());
    const Status got = reread.readExact(payload.data(), payload.size());
    ASSERT_FALSE(got.isOk()) << "the tail must be missing";
    EXPECT_EQ(got.code(), StatusCode::kCorrupt);
    reread.close();
    std::remove(path.c_str());
}

TEST(MappedFile, MapsWholeFileContents)
{
    const std::string path = "/tmp/vpsim_io_mapped.bin";
    const std::string payload = "mapped file payload bytes";
    {
        io::File file;
        ASSERT_TRUE(file.openForWrite(path).isOk());
        ASSERT_TRUE(
            file.writeAll(payload.data(), payload.size()).isOk());
    }
    io::MappedFile mapped;
    ASSERT_TRUE(mapped.map(path).isOk());
    EXPECT_TRUE(mapped.isMapped());
    ASSERT_EQ(mapped.size(), payload.size());
    EXPECT_EQ(std::string(reinterpret_cast<const char *>(mapped.data()),
                          mapped.size()),
              payload);
    mapped.unmap();
    EXPECT_FALSE(mapped.isMapped());
    EXPECT_EQ(mapped.size(), 0u);
    std::remove(path.c_str());
}

TEST(MappedFile, MissingFileIsAnIoError)
{
    io::MappedFile mapped;
    const Status got = mapped.map("/tmp/vpsim_io_mapped_missing.bin");
    ASSERT_FALSE(got.isOk());
    EXPECT_EQ(got.code(), StatusCode::kIo);
    EXPECT_FALSE(mapped.isMapped());
    EXPECT_NE(got.message().find("vpsim_io_mapped_missing"),
              std::string::npos)
        << got.message();
}

TEST(MappedFile, EmptyFileDeclinesSoCallersFallBack)
{
    const std::string path = "/tmp/vpsim_io_mapped_empty.bin";
    {
        io::File file;
        ASSERT_TRUE(file.openForWrite(path).isOk());
    }
    io::MappedFile mapped;
    const Status got = mapped.map(path);
    ASSERT_FALSE(got.isOk());
    EXPECT_EQ(got.code(), StatusCode::kIo);
    EXPECT_FALSE(mapped.isMapped());
    std::remove(path.c_str());
}

TEST(MappedFile, InjectedOpenFaultFails)
{
    InjectorGuard guard;
    const std::string path = "/tmp/vpsim_io_mapped_fault.bin";
    {
        io::File file;
        ASSERT_TRUE(file.openForWrite(path).isOk());
        ASSERT_TRUE(file.writeAll("abc", 3).isOk());
    }
    io::configureFaultInjection("open:1:eio");
    io::MappedFile mapped;
    const Status got = mapped.map(path);
    ASSERT_FALSE(got.isOk());
    EXPECT_EQ(got.code(), StatusCode::kIo);
    EXPECT_NE(got.message().find("(injected)"), std::string::npos)
        << got.message();
    std::remove(path.c_str());
}

TEST(MappedFile, InjectedReadFaultFiresOnTheMmapPath)
{
    // Regression: map() used to consult only the "open" counter, so
    // `read:` fault specs silently skipped the mmap path. The mapping
    // counts as exactly one bulk read.
    InjectorGuard guard;
    const std::string path = "/tmp/vpsim_io_mapped_read_fault.bin";
    {
        io::File file;
        ASSERT_TRUE(file.openForWrite(path).isOk());
        ASSERT_TRUE(file.writeAll("abc", 3).isOk());
    }
    io::configureFaultInjection("read:1:eio");
    io::MappedFile mapped;
    const Status got = mapped.map(path);
    ASSERT_FALSE(got.isOk());
    EXPECT_EQ(got.code(), StatusCode::kIo);
    EXPECT_NE(got.message().find("read error"), std::string::npos)
        << got.message();
    EXPECT_FALSE(mapped.isMapped());

    // The clause fired on the mapping, so a retry succeeds and the
    // read counter advanced exactly once.
    ASSERT_TRUE(mapped.map(path).isOk());
    EXPECT_EQ(mapped.size(), 3u);
    std::remove(path.c_str());
}

TEST(MappedFile, InjectedMmapFailLeavesBufferedFallbackWorking)
{
    InjectorGuard guard;
    const std::string path = "/tmp/vpsim_io_mapped_mmap_fail.bin";
    {
        io::File file;
        ASSERT_TRUE(file.openForWrite(path).isOk());
        ASSERT_TRUE(file.writeAll("abc", 3).isOk());
    }
    io::configureFaultInjection("mmap:1:mmap-fail");
    io::MappedFile mapped;
    const Status got = mapped.map(path);
    ASSERT_FALSE(got.isOk());
    EXPECT_EQ(got.code(), StatusCode::kIo);
    EXPECT_NE(got.message().find("cannot map"), std::string::npos)
        << got.message();

    // The buffered path is untouched by mmap clauses — exactly the
    // degradation callers rely on.
    io::File fallback;
    ASSERT_TRUE(fallback.openForRead(path).isOk());
    char buffer[3];
    EXPECT_TRUE(fallback.readExact(buffer, sizeof(buffer)).isOk());
    fallback.close();
    std::remove(path.c_str());
}

TEST(IoFile, SyncFlushesAndSurvivesReopen)
{
    const std::string path = "/tmp/vpsim_io_sync.bin";
    io::File file;
    ASSERT_TRUE(file.openForWrite(path).isOk());
    ASSERT_TRUE(file.writeAll("synced", 6).isOk());
    ASSERT_TRUE(file.sync().isOk());
    file.close();

    io::File reread;
    ASSERT_TRUE(reread.openForRead(path).isOk());
    char buffer[6];
    ASSERT_TRUE(reread.readExact(buffer, sizeof(buffer)).isOk());
    EXPECT_EQ(std::string(buffer, 6), "synced");
    reread.close();
    std::remove(path.c_str());
}

TEST(IoFile, SyncRoutesThroughTheFlushFaultCounter)
{
    InjectorGuard guard;
    io::configureFaultInjection("flush:1:enospc");
    const std::string path = "/tmp/vpsim_io_sync_fault.bin";
    io::File file;
    ASSERT_TRUE(file.openForWrite(path).isOk());
    ASSERT_TRUE(file.writeAll("abc", 3).isOk());
    const Status synced = file.sync();
    ASSERT_FALSE(synced.isOk());
    EXPECT_EQ(synced.code(), StatusCode::kIo);
    EXPECT_NE(synced.message().find("No space left on device"),
              std::string::npos)
        << synced.message();
    file.close();
    std::remove(path.c_str());
}

TEST(IoFile, ShortFileReadsAsCorruptNotIo)
{
    const std::string path = "/tmp/vpsim_io_short.bin";
    {
        io::File file;
        ASSERT_TRUE(file.openForWrite(path).isOk());
        ASSERT_TRUE(file.writeAll("ab", 2).isOk());
    }
    io::File file;
    ASSERT_TRUE(file.openForRead(path).isOk());
    char buffer[16];
    const Status got = file.readExact(buffer, sizeof(buffer));
    ASSERT_FALSE(got.isOk());
    EXPECT_EQ(got.code(), StatusCode::kCorrupt)
        << "truncation is data corruption, not a transient I/O error";
    file.close();
    std::remove(path.c_str());
}

} // namespace
} // namespace vpsim
