/**
 * @file
 * Tests for the eight mini-benchmarks: every workload must run for the
 * requested instruction budget without halting or trapping, be
 * deterministic, and exhibit SPECint-like trace characteristics.
 */

#include <gtest/gtest.h>

#include "trace/trace_stats.hpp"
#include "vm/interpreter.hpp"
#include "workloads/workload.hpp"

namespace vpsim
{
namespace
{

class WorkloadTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadTest, RunsForFullBudget)
{
    Workload workload = buildWorkload(GetParam());
    Interpreter interp(workload.program, std::move(workload.memory));
    std::vector<TraceRecord> trace;
    const auto result = interp.run(50000, &trace);
    EXPECT_EQ(result.executed, 50000u) << "workload ended early";
    EXPECT_FALSE(result.halted) << "workloads must run indefinitely";
    EXPECT_EQ(trace.size(), 50000u);
}

TEST_P(WorkloadTest, TraceIsDeterministic)
{
    const auto first = captureWorkloadTrace(GetParam(), 20000);
    const auto second = captureWorkloadTrace(GetParam(), 20000);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        ASSERT_EQ(first[i].pc, second[i].pc) << "at seq " << i;
        ASSERT_EQ(first[i].result, second[i].result) << "at seq " << i;
        ASSERT_EQ(first[i].nextPc, second[i].nextPc) << "at seq " << i;
    }
}

TEST_P(WorkloadTest, SequenceNumbersAreDense)
{
    const auto trace = captureWorkloadTrace(GetParam(), 5000);
    ASSERT_EQ(trace.size(), 5000u);
    for (std::size_t i = 0; i < trace.size(); ++i)
        ASSERT_EQ(trace[i].seq, i);
}

TEST_P(WorkloadTest, ControlFlowIsConsistent)
{
    const auto trace = captureWorkloadTrace(GetParam(), 30000);
    for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
        ASSERT_EQ(trace[i].nextPc, trace[i + 1].pc)
            << "discontinuity at seq " << i;
        if (!trace[i].isControlFlow()) {
            ASSERT_EQ(trace[i].nextPc, trace[i].fallThrough())
                << "non-control instruction jumped at seq " << i;
        } else if (!trace[i].taken && trace[i].isConditional()) {
            ASSERT_EQ(trace[i].nextPc, trace[i].fallThrough())
                << "not-taken branch jumped at seq " << i;
        }
    }
}

TEST_P(WorkloadTest, HasSpecIntLikeMix)
{
    const auto trace = captureWorkloadTrace(GetParam(), 60000);
    const TraceStats stats = computeTraceStats(trace);

    // Every benchmark must have a healthy mix of memory, control and ALU.
    EXPECT_GT(stats.loads + stats.stores, stats.totalInsts / 20)
        << "too few memory operations";
    EXPECT_GT(stats.condBranches + stats.jumps, stats.totalInsts / 25)
        << "too little control flow";
    EXPECT_GT(stats.valueProducers, stats.totalInsts / 2)
        << "too few value-producing instructions";

    // Dynamic basic blocks should be SPECint-sized (go is the branchy
    // extreme at ~2.5, m88ksim the straight-line extreme).
    EXPECT_GE(stats.avgBasicBlock, 2.0);
    EXPECT_LE(stats.avgBasicBlock, 40.0);

    // The working set must revisit code (loops), not run off linearly.
    EXPECT_LT(stats.distinctPcs, 1000u);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadTest,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

class WorkloadParamsTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadParamsTest, ScaleChangesTheDataSetNotTheValidity)
{
    WorkloadParams big;
    big.scale = 4;
    const auto trace = captureWorkloadTrace(GetParam(), 40000, big);
    ASSERT_EQ(trace.size(), 40000u) << "scaled inputs must still run";
    // Consistent control flow at scale.
    for (std::size_t i = 0; i + 1 < trace.size(); ++i)
        ASSERT_EQ(trace[i].nextPc, trace[i + 1].pc);
}

TEST_P(WorkloadParamsTest, SeedChangesTheInputData)
{
    WorkloadParams a;
    WorkloadParams b_params;
    b_params.seed = 12345;
    const auto ta = captureWorkloadTrace(GetParam(), 30000, a);
    const auto tb = captureWorkloadTrace(GetParam(), 30000, b_params);
    ASSERT_EQ(ta.size(), tb.size());
    // Same program (static pcs identical at the start)...
    EXPECT_EQ(ta[0].pc, tb[0].pc);
    // ...but at least some produced values must differ (vortex is the
    // exception: its input is entirely self-generated).
    if (GetParam() == "vortex")
        return;
    bool differs = false;
    for (std::size_t i = 0; i < ta.size() && !differs; ++i) {
        differs = ta[i].result != tb[i].result ||
                  ta[i].pc != tb[i].pc;
    }
    EXPECT_TRUE(differs) << "seed had no effect on " << GetParam();
}

TEST_P(WorkloadParamsTest, DefaultParamsMatchLegacyBuilder)
{
    // The zero-argument path and explicit defaults must be identical.
    const auto legacy = captureWorkloadTrace(GetParam(), 10000);
    const auto expl = captureWorkloadTrace(GetParam(), 10000,
                                           WorkloadParams{});
    ASSERT_EQ(legacy.size(), expl.size());
    for (std::size_t i = 0; i < legacy.size(); ++i) {
        ASSERT_EQ(legacy[i].pc, expl[i].pc);
        ASSERT_EQ(legacy[i].result, expl[i].result);
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadParamsTest,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) { return info.param; });

TEST(WorkloadRegistry, ZeroScaleDies)
{
    WorkloadParams params;
    params.scale = 0;
    EXPECT_EXIT(buildWorkload("go", params),
                ::testing::ExitedWithCode(1), "scale");
}

TEST(WorkloadRegistry, DescriptionsExist)
{
    for (const auto &name : workloadNames()) {
        EXPECT_FALSE(workloadDescription(name).empty());
        EXPECT_NE(workloadDescription(name).find("SPEC"),
                  std::string::npos);
    }
}

TEST(WorkloadRegistry, KnowsAllEightBenchmarks)
{
    EXPECT_EQ(workloadNames().size(), 8u);
}

TEST(WorkloadRegistry, UnknownNameDies)
{
    EXPECT_EXIT(buildWorkload("specfp"), ::testing::ExitedWithCode(1),
                "unknown workload");
}

} // namespace
} // namespace vpsim
