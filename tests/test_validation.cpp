/**
 * @file
 * Tests for the self-checking simulation core: the invariant engine
 * (levels, counters, kInternal statuses), the Status cause chain, the
 * golden-reference ideal machine and the --cross-check differential
 * mode, the --job-timeout watchdog, parse-time option-combination
 * validation, and the signed run manifests written next to --csv files.
 */

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancellation.hpp"
#include "common/crc32.hpp"
#include "common/invariant.hpp"
#include "common/status.hpp"
#include "core/ideal_machine.hpp"
#include "core/reference_machine.hpp"
#include "sim/sim_runner.hpp"
#include "workloads/workload.hpp"

namespace vpsim
{
namespace
{

/** Restore the process-wide invariant level on scope exit. */
struct LevelGuard
{
    InvariantLevel saved = invariantLevel();
    ~LevelGuard() { setInvariantLevel(saved); }
};

Options
parsedOptions(std::vector<const char *> args)
{
    args.insert(args.begin(), "bench");
    Options options;
    declareStandardOptions(options, 5000);
    options.parse(static_cast<int>(args.size()), args.data(), "test");
    return options;
}

TraceRecord
rec(SeqNum seq, RegIndex rd, RegIndex rs1 = invalidReg, Value result = 0)
{
    TraceRecord record;
    record.seq = seq;
    record.pc = 0x1000 + seq * instBytes;
    record.nextPc = record.pc + instBytes;
    record.op = rs1 == invalidReg ? OpCode::Addi : OpCode::Add;
    record.rd = rd;
    record.rs1 = rs1 == invalidReg ? 0 : rs1;
    record.rs2 = rs1 == invalidReg ? invalidReg : 0;
    record.result = result;
    return record;
}

/** A value-varied mix of chains and independents for the differential. */
std::vector<TraceRecord>
mixedTrace(std::size_t length)
{
    std::vector<TraceRecord> trace;
    for (SeqNum seq = 0; seq < length; ++seq) {
        const auto reg = static_cast<RegIndex>(1 + seq % 6);
        if (seq % 3 == 0 && seq > 6) {
            // Dependent on an earlier register, stride-friendly value.
            trace.push_back(rec(seq, reg, static_cast<RegIndex>(1 + (seq + 1) % 6),
                                static_cast<Value>(seq * 4)));
        } else if (seq % 7 == 0) {
            // Value the stride predictor will miss (irregular).
            trace.push_back(
                rec(seq, reg, invalidReg,
                    static_cast<Value>((seq * 2654435761u) & 0xffff)));
        } else {
            trace.push_back(rec(seq, reg, invalidReg,
                                static_cast<Value>(100 + seq % 5)));
        }
    }
    return trace;
}

// ---------------------------------------------------------------------
// Invariant engine
// ---------------------------------------------------------------------

TEST(Invariants, LevelGatesWhichTiersRun)
{
    LevelGuard guard;

    setInvariantLevel(InvariantLevel::Off);
    EXPECT_FALSE(invariantsActive(InvariantLevel::Cheap));
    EXPECT_NO_THROW(
        checkInvariant(InvariantLevel::Cheap, false, "t.gated", std::string("x")));

    setInvariantLevel(InvariantLevel::Cheap);
    EXPECT_TRUE(invariantsActive(InvariantLevel::Cheap));
    EXPECT_FALSE(invariantsActive(InvariantLevel::Full));
    EXPECT_NO_THROW(
        checkInvariant(InvariantLevel::Full, false, "t.full_gated", std::string("x")));
    EXPECT_THROW(
        checkInvariant(InvariantLevel::Cheap, false, "t.cheap", std::string("x")),
        InvariantViolation);

    setInvariantLevel(InvariantLevel::Full);
    EXPECT_THROW(
        checkInvariant(InvariantLevel::Full, false, "t.full", std::string("x")),
        InvariantViolation);
}

TEST(Invariants, ViolationCarriesInternalStatusAndCounts)
{
    LevelGuard guard;
    setInvariantLevel(InvariantLevel::Cheap);
    const std::uint64_t violations_before = invariantViolations();
    const std::uint64_t checks_before = invariantChecksEvaluated();

    try {
        checkInvariant(InvariantLevel::Cheap, false, "t.status",
                       std::string("the detail"));
        FAIL() << "must throw";
    } catch (const InvariantViolation &violation) {
        EXPECT_EQ(violation.status().code(), StatusCode::kInternal);
        EXPECT_EQ(violation.check(), "t.status");
        EXPECT_NE(std::string(violation.what())
                      .find("invariant 't.status' violated: the detail"),
                  std::string::npos);
    }
    EXPECT_EQ(invariantViolations(), violations_before + 1);
    EXPECT_GT(invariantChecksEvaluated(), checks_before);
}

TEST(Invariants, LazyDetailOnlyBuiltOnFailure)
{
    LevelGuard guard;
    setInvariantLevel(InvariantLevel::Cheap);
    bool built = false;
    checkInvariant(InvariantLevel::Cheap, true, "t.lazy", [&] {
        built = true;
        return std::string("expensive");
    });
    EXPECT_FALSE(built) << "detail must not be built when the check holds";
    EXPECT_THROW(checkInvariant(InvariantLevel::Cheap, false, "t.lazy",
                                [&] {
                                    built = true;
                                    return std::string("expensive");
                                }),
                 InvariantViolation);
    EXPECT_TRUE(built);
}

TEST(Invariants, LevelNamesRoundTrip)
{
    EXPECT_EQ(invariantLevelFromString("off"), InvariantLevel::Off);
    EXPECT_EQ(invariantLevelFromString("cheap"), InvariantLevel::Cheap);
    EXPECT_EQ(invariantLevelFromString("full"), InvariantLevel::Full);
    EXPECT_STREQ(invariantLevelName(InvariantLevel::Full), "full");
    EXPECT_DEATH(invariantLevelFromString("loud"),
                 "off, cheap or full");
}

// ---------------------------------------------------------------------
// Status cause chain
// ---------------------------------------------------------------------

TEST(Status, WrapPreservesCauseChain)
{
    const Status root =
        Status::error(StatusCode::kCorrupt, "bad checksum in trace");
    const Status wrapped = Status::wrap(
        StatusCode::kInternal, "invariant tripped while loading", root);

    EXPECT_EQ(wrapped.code(), StatusCode::kInternal);
    EXPECT_EQ(wrapped.rootCause(), StatusCode::kCorrupt);
    ASSERT_NE(wrapped.cause(), nullptr);
    EXPECT_EQ(wrapped.cause()->code(), StatusCode::kCorrupt);
    EXPECT_NE(wrapped.message().find("[corrupt] bad checksum"),
              std::string::npos)
        << "composed message must include the cause";
}

TEST(Status, InternalCodeHasAName)
{
    EXPECT_STREQ(statusCodeName(StatusCode::kInternal), "internal");
    const Status plain = Status::error(StatusCode::kIo, "disk");
    EXPECT_EQ(plain.cause(), nullptr);
    EXPECT_EQ(plain.rootCause(), StatusCode::kIo);
}

// ---------------------------------------------------------------------
// Golden-reference machine
// ---------------------------------------------------------------------

void
expectSameResult(const std::vector<TraceRecord> &trace,
                 const IdealMachineConfig &config, const char *label)
{
    const IdealMachineResult primary = runIdealMachine(trace, config);
    const IdealMachineResult reference =
        runReferenceIdealMachine(trace, config);
    EXPECT_EQ(primary.cycles, reference.cycles) << label;
    EXPECT_EQ(primary.instructions, reference.instructions) << label;
    EXPECT_EQ(primary.predictionsMade, reference.predictionsMade)
        << label;
    EXPECT_EQ(primary.predictionsCorrect, reference.predictionsCorrect)
        << label;
    EXPECT_EQ(primary.predictionsWrong, reference.predictionsWrong)
        << label;
    EXPECT_EQ(primary.stallingUses, reference.stallingUses) << label;
    EXPECT_EQ(primary.correctlyPredictedUses,
              reference.correctlyPredictedUses)
        << label;
    EXPECT_EQ(primary.usefulPredictions, reference.usefulPredictions)
        << label;
}

TEST(ReferenceMachine, MatchesPrimaryAcrossConfigs)
{
    const auto synthetic = mixedTrace(600);
    const auto workload = captureWorkloadTrace("compress", 3000);

    for (const auto *trace : {&synthetic, &workload}) {
        IdealMachineConfig config;
        for (const unsigned rate : {1u, 4u, 16u, 40u}) {
            config = IdealMachineConfig{};
            config.fetchRate = rate;
            expectSameResult(*trace, config, "no-vp");

            config.useValuePrediction = true;
            expectSameResult(*trace, config, "stride vp");

            config.vpPenalty = 3;
            expectSameResult(*trace, config, "penalty 3");

            config.vpPenalty = 1;
            config.windowSize = 16;
            expectSameResult(*trace, config, "window 16");

            config.windowSize = 40;
            config.vpScope = VpScope::LoadsOnly;
            expectSameResult(*trace, config, "loads only");

            config.vpScope = VpScope::AllInstructions;
            config.perfectValuePrediction = true;
            expectSameResult(*trace, config, "perfect vp");
        }
    }
}

TEST(ReferenceMachine, SpeedupMatchesPrimary)
{
    const auto trace = mixedTrace(500);
    IdealMachineConfig config;
    config.fetchRate = 16;
    EXPECT_DOUBLE_EQ(idealVpSpeedup(trace, config),
                     referenceIdealVpSpeedup(trace, config));
}

// ---------------------------------------------------------------------
// --cross-check differential mode
// ---------------------------------------------------------------------

TEST(CrossCheck, AgreementPassesAndIsCounted)
{
    const Options options = parsedOptions({"--cross-check", "3"});
    SimRunner runner(options);
    const auto cells = runner.runGrid(
        2, 3, [](std::size_t row, std::size_t col) {
            return static_cast<double>(row * 10 + col);
        },
        [](std::size_t row, std::size_t col) {
            return static_cast<double>(row * 10 + col);
        });
    for (std::size_t row = 0; row < 2; ++row)
        for (std::size_t col = 0; col < 3; ++col)
            EXPECT_EQ(cells[row][col],
                      static_cast<double>(row * 10 + col));
    EXPECT_EQ(runner.crossCheckedCells(), 3u);
    EXPECT_TRUE(runner.failures().empty());
}

TEST(CrossCheck, DivergencePoisonsTheCellUnderKeepGoing)
{
    const Options options =
        parsedOptions({"--cross-check", "1", "--keep-going", "1"});
    SimRunner runner(options);
    const auto cells = runner.runGrid(
        2, 2, [](std::size_t, std::size_t) { return 1.0; },
        [](std::size_t, std::size_t) { return 2.0; });
    std::size_t nan_cells = 0;
    for (const auto &row : cells)
        for (const double value : row)
            nan_cells += std::isnan(value) ? 1 : 0;
    EXPECT_EQ(nan_cells, 1u)
        << "exactly the sampled cell must be poisoned";
    ASSERT_EQ(runner.failures().size(), 1u);
    EXPECT_NE(runner.failures()[0].error.find("cross-check"),
              std::string::npos);
    EXPECT_NE(runner.failures()[0].error.find("internal"),
              std::string::npos);
    EXPECT_EQ(runner.crossCheckedCells(), 0u);
}

TEST(CrossCheck, DivergenceAbortsWithoutKeepGoing)
{
    const Options options = parsedOptions({"--cross-check", "4"});
    SimRunner runner(options);
    EXPECT_THROW(
        runner.runGrid(
            1, 2, [](std::size_t, std::size_t) { return 1.0; },
            [](std::size_t, std::size_t) { return 1.5; }),
        InvariantViolation);
}

TEST(CrossCheck, NoReferenceMeansNoOp)
{
    const Options options = parsedOptions({"--cross-check", "8"});
    SimRunner runner(options);
    const auto cells = runner.runGrid(
        1, 2, [](std::size_t, std::size_t col) {
            return static_cast<double>(col);
        });
    EXPECT_EQ(cells[0][1], 1.0);
    EXPECT_EQ(runner.crossCheckedCells(), 0u);
}

// ---------------------------------------------------------------------
// --job-timeout watchdog
// ---------------------------------------------------------------------

TEST(Watchdog, CancelsAStuckJobAsTimeout)
{
    const Options options = parsedOptions(
        {"--job-timeout", "0.2", "--keep-going", "1", "--jobs", "2"});
    SimRunner runner(options);
    std::vector<SimJob> batch;
    batch.push_back({"healthy", [] {}});
    batch.push_back({"stuck", [] {
                         // Heartbeats forever with CONSTANT progress:
                         // alive but not advancing, exactly what the
                         // watchdog must catch.
                         for (;;)
                             simHeartbeat(7);
                     }});
    runner.run(std::move(batch));
    ASSERT_EQ(runner.failures().size(), 1u);
    EXPECT_EQ(runner.failures()[0].label, "stuck");
    EXPECT_NE(runner.failures()[0].error.find("timeout"),
              std::string::npos);
    EXPECT_EQ(runner.timedOutJobs(), 1u);
}

TEST(Watchdog, ProgressingJobIsLeftAlone)
{
    const Options options = parsedOptions(
        {"--job-timeout", "0.15", "--keep-going", "1"});
    SimRunner runner(options);
    std::vector<SimJob> batch;
    batch.push_back(
        {"busy", [] {
             // Runs well past the timeout but keeps publishing new
             // progress values; the watchdog must not fire.
             const auto start = std::chrono::steady_clock::now();
             std::uint64_t progress = 0;
             while (std::chrono::steady_clock::now() - start <
                    std::chrono::milliseconds(400))
                 simHeartbeat(++progress);
         }});
    runner.run(std::move(batch));
    EXPECT_TRUE(runner.failures().empty());
    EXPECT_EQ(runner.timedOutJobs(), 0u);
}

TEST(Watchdog, HeartbeatIsANoOpOutsideJobs)
{
    // Models call simHeartbeat unconditionally; outside a watched job
    // it must be free and harmless.
    EXPECT_EQ(currentCancellationToken(), nullptr);
    EXPECT_NO_THROW(simHeartbeat(123));
}

// ---------------------------------------------------------------------
// Parse-time option-combination validation
// ---------------------------------------------------------------------

TEST(OptionValidation, ResumeRequiresCheckpoint)
{
    EXPECT_DEATH(parsedOptions({"--resume", "1"}),
                 "--resume 1 requires --checkpoint");
}

TEST(OptionValidation, ExplicitNonPositiveJobTimeoutRejected)
{
    EXPECT_DEATH(parsedOptions({"--job-timeout", "0"}),
                 "--job-timeout SEC must be positive");
    EXPECT_DEATH(parsedOptions({"--job-timeout", "-1"}),
                 "--job-timeout SEC must be positive");
    // The default (absent) 0 stays legal: watchdog simply off.
    EXPECT_NO_FATAL_FAILURE(parsedOptions({}));
}

TEST(OptionValidation, CrossCheckRefusesFaultInjection)
{
    EXPECT_DEATH(parsedOptions({"--cross-check", "2", "--fault-inject",
                                "job:1:throw"}),
                 "cannot run under --fault-inject");
    EXPECT_DEATH(parsedOptions({"--cross-check", "-3"}),
                 "--cross-check N must be >= 0");
}

TEST(OptionValidation, BadInvariantLevelRejectedAtParse)
{
    EXPECT_DEATH(parsedOptions({"--check-invariants", "paranoid"}),
                 "--check-invariants expects off, cheap or full");
}

// ---------------------------------------------------------------------
// Signed run manifests
// ---------------------------------------------------------------------

TEST(Manifest, WrittenNextToCsvAndChecksumsMatch)
{
    const std::string csv_path =
        "/tmp/vpsim-manifest-test-" + std::to_string(::getpid()) +
        ".csv";
    const std::string manifest_path = csv_path + ".manifest.json";
    std::remove(csv_path.c_str());
    std::remove(manifest_path.c_str());

    const Options options = parsedOptions(
        {"--csv", csv_path.c_str(), "--check-invariants", "full"});
    maybeWriteCsv(options, "test.fig", {"rowA"}, {"c1", "c2"},
                  {{0.25, 0.5}});

    std::ifstream manifest(manifest_path);
    ASSERT_TRUE(manifest.good()) << "manifest must be written";
    std::stringstream manifest_text;
    manifest_text << manifest.rdbuf();
    const std::string text = manifest_text.str();

    EXPECT_NE(text.find("\"schema\": \"vpsim-run-manifest 2\""),
              std::string::npos);
    EXPECT_NE(text.find("\"salvagedBlocks\": 0"), std::string::npos)
        << "a clean run must record a zero salvage tally";
    EXPECT_NE(text.find("\"checkInvariants\": \"full\""),
              std::string::npos);
    EXPECT_NE(text.find("\"fingerprint\""), std::string::npos);
    EXPECT_NE(text.find("\"signature\": \"crc32:"), std::string::npos);

    // The recorded CRC must match the CSV's actual bytes.
    std::ifstream csv(csv_path, std::ios::binary);
    ASSERT_TRUE(csv.good());
    std::stringstream csv_bytes;
    csv_bytes << csv.rdbuf();
    const std::string data = csv_bytes.str();
    char expected[16];
    std::snprintf(expected, sizeof(expected), "%08x",
                  crc32(data.data(), data.size()));
    EXPECT_NE(text.find(std::string("\"csvCrc32\": \"") + expected),
              std::string::npos)
        << "manifest CRC must match the CSV on disk";

    std::remove(csv_path.c_str());
    std::remove(manifest_path.c_str());
}

TEST(Manifest, RewrittenAfterEveryAppend)
{
    const std::string csv_path =
        "/tmp/vpsim-manifest-append-" + std::to_string(::getpid()) +
        ".csv";
    const std::string manifest_path = csv_path + ".manifest.json";
    std::remove(csv_path.c_str());
    std::remove(manifest_path.c_str());

    const Options options = parsedOptions({"--csv", csv_path.c_str()});
    maybeWriteCsv(options, "fig.a", {"r"}, {"c"}, {{1.0}});
    std::ifstream first_file(manifest_path);
    std::stringstream first;
    first << first_file.rdbuf();
    maybeWriteCsv(options, "fig.b", {"r"}, {"c"}, {{2.0}});
    std::ifstream second_file(manifest_path);
    std::stringstream second;
    second << second_file.rdbuf();

    EXPECT_NE(first.str(), second.str())
        << "appending rows must refresh the manifest's checksum";

    std::remove(csv_path.c_str());
    std::remove(manifest_path.c_str());
}

} // namespace
} // namespace vpsim
