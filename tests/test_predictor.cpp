/**
 * @file
 * Tests for the value predictors: last-value, stride, two-delta, hybrid,
 * the classification wrapper, finite table storage, and the pipelined
 * (speculative update / delayed train) behaviours the paper relies on.
 */

#include <gtest/gtest.h>

#include "predictor/factory.hpp"
#include "predictor/hybrid.hpp"
#include "predictor/last_value.hpp"
#include "predictor/stride.hpp"
#include "predictor/table_storage.hpp"
#include "predictor/two_delta.hpp"

namespace vpsim
{
namespace
{

constexpr Addr pcA = 0x1000;
constexpr Addr pcB = 0x2000;

/** Feed a sequential (predict-then-train) value stream; return hits. */
unsigned
sequentialHits(ValuePredictor &predictor, Addr pc,
               const std::vector<Value> &values)
{
    unsigned hits = 0;
    for (const Value value : values) {
        const RawPrediction raw = predictor.lookup(pc);
        if (raw.hasPrediction && raw.value == value)
            ++hits;
        predictor.train(pc, value,
                        raw.hasPrediction && raw.value == value);
    }
    return hits;
}

TEST(LastValue, PredictsRepeatedValue)
{
    LastValuePredictor predictor;
    EXPECT_EQ(sequentialHits(predictor, pcA, {7, 7, 7, 7}), 3u)
        << "first sight cannot predict; the rest repeat";
}

TEST(LastValue, FailsOnStrides)
{
    LastValuePredictor predictor;
    EXPECT_EQ(sequentialHits(predictor, pcA, {1, 2, 3, 4}), 0u);
}

TEST(LastValue, SeparatesPcs)
{
    LastValuePredictor predictor;
    predictor.train(pcA, 10);
    predictor.train(pcB, 20);
    EXPECT_EQ(predictor.lookup(pcA).value, 10u);
    EXPECT_EQ(predictor.lookup(pcB).value, 20u);
    EXPECT_EQ(predictor.tableSize(), 2u);
}

TEST(LastValue, StrideInfoIsZeroStride)
{
    LastValuePredictor predictor;
    predictor.train(pcA, 42);
    const StrideInfo info = predictor.strideInfo(pcA);
    EXPECT_TRUE(info.valid);
    EXPECT_EQ(info.lastValue, 42u);
    EXPECT_EQ(info.stride, 0u);
}

TEST(Stride, PredictsConstantSequence)
{
    StridePredictor predictor;
    EXPECT_EQ(sequentialHits(predictor, pcA, {5, 5, 5, 5, 5}), 4u)
        << "constant values are stride 0";
}

TEST(Stride, PredictsArithmeticSequence)
{
    StridePredictor predictor;
    // 10, 13, 16, ... : first is cold, second trains the stride.
    EXPECT_EQ(sequentialHits(predictor, pcA, {10, 13, 16, 19, 22}), 3u);
}

TEST(Stride, PredictsNegativeStrides)
{
    StridePredictor predictor;
    EXPECT_EQ(sequentialHits(predictor, pcA, {100, 90, 80, 70}), 2u);
}

TEST(Stride, RelearnsAfterBreak)
{
    StridePredictor predictor;
    sequentialHits(predictor, pcA, {10, 20, 30});
    // Break to a new base and stride; two samples re-establish it.
    EXPECT_EQ(sequentialHits(predictor, pcA, {1000, 1001, 1002, 1003}),
              2u);
}

TEST(Stride, SpeculativeUpdateAdvancesInFlightCopies)
{
    // The Figure 4.2 scenario: several copies of a loop-index
    // instruction are fetched together; each lookup must receive the
    // next value in the sequence X, X+d, X+2d before any of them train.
    StridePredictor predictor;
    predictor.train(pcA, 100);
    predictor.train(pcA, 110);
    EXPECT_EQ(predictor.lookup(pcA).value, 120u);
    EXPECT_EQ(predictor.lookup(pcA).value, 130u);
    EXPECT_EQ(predictor.lookup(pcA).value, 140u);
}

TEST(Stride, CorrectDelayedTrainDoesNotRewind)
{
    StridePredictor predictor;
    predictor.train(pcA, 100);
    predictor.train(pcA, 110);
    EXPECT_EQ(predictor.lookup(pcA).value, 120u);
    EXPECT_EQ(predictor.lookup(pcA).value, 130u);
    // The first copy retires correct; the table must not rewind.
    predictor.train(pcA, 120, true);
    EXPECT_EQ(predictor.lookup(pcA).value, 140u);
}

TEST(Stride, WrongTrainRepairsWithInFlightProjection)
{
    StridePredictor predictor;
    predictor.train(pcA, 100);
    predictor.train(pcA, 110);
    // Three copies in flight...
    predictor.lookup(pcA);
    predictor.lookup(pcA);
    predictor.lookup(pcA);
    // ...but the first one resolves to an unexpected value that still
    // continues the old stride afterwards (stable stride). The repair
    // must project past the two remaining in-flight copies.
    predictor.train(pcA, 200, false); // stride breaks: 200 - 110 = 90
    predictor.train(pcA, 290, false); // 290 - 200 = 90 == stride: stable
    // Remaining in flight after two trains: 1. spec = 290 + 90 = 380.
    EXPECT_EQ(predictor.lookup(pcA).value, 470u)
        << "lookup sees spec (380) + stride (90)";
}

TEST(Stride, NonSpeculativeModeHoldsState)
{
    StridePredictor predictor(0, false);
    predictor.train(pcA, 10);
    predictor.train(pcA, 20);
    EXPECT_EQ(predictor.lookup(pcA).value, 30u);
    EXPECT_EQ(predictor.lookup(pcA).value, 30u)
        << "without speculative update both copies see the same value";
}

TEST(TwoDelta, IgnoresOneOffDiscontinuity)
{
    TwoDeltaStridePredictor predictor;
    // Establish stride 1, then a single jump, then stride 1 resumes.
    sequentialHits(predictor, pcA, {1, 2, 3, 4});
    const RawPrediction after_jump = [&] {
        predictor.train(pcA, 100); // jump: candidate stride 96
        return predictor.lookup(pcA);
    }();
    // stride1 is still 1 because 96 was seen only once.
    EXPECT_EQ(after_jump.value, 101u);
}

TEST(TwoDelta, AdoptsRepeatedNewStride)
{
    TwoDeltaStridePredictor predictor;
    sequentialHits(predictor, pcA, {1, 2, 3});
    predictor.train(pcA, 10); // delta 7 (candidate)
    predictor.train(pcA, 17); // delta 7 again: promoted
    EXPECT_EQ(predictor.lookup(pcA).value, 24u);
}

TEST(Hybrid, ServesConstantsFromLastValue)
{
    HybridPredictor predictor;
    sequentialHits(predictor, pcA, {9, 9, 9, 9});
    EXPECT_GT(predictor.lastValueServed(), 0u);
    EXPECT_EQ(predictor.strideServed(), 0u)
        << "constants never promote to the stride table";
}

TEST(Hybrid, PromotesStridingInstructions)
{
    HybridPredictor predictor;
    sequentialHits(predictor, pcA, {10, 20, 30, 40, 50, 60});
    EXPECT_GT(predictor.strideServed(), 0u)
        << "two repeated nonzero strides promote the pc";
    // Once promoted, predictions follow the stride.
    EXPECT_EQ(predictor.lookup(pcA).value, 70u);
}

TEST(Hybrid, StrideTableIsSmall)
{
    // A finite stride table evicts on index conflicts while the
    // last-value table keeps serving.
    HybridPredictor predictor(0, 2);
    sequentialHits(predictor, pcA, {10, 20, 30, 40});
    const RawPrediction raw = predictor.lookup(pcB);
    EXPECT_FALSE(raw.hasPrediction) << "unknown pc has no prediction";
}

TEST(Classifier, RequiresConfidenceBeforePredicting)
{
    ClassifiedPredictor classifier(std::make_unique<StridePredictor>());
    std::vector<ClassifiedPrediction> preds;
    for (const Value v : {10, 20, 30, 40, 50}) {
        const ClassifiedPrediction p = classifier.predict(pcA);
        preds.push_back(p);
        classifier.update(pcA, p, v);
    }
    EXPECT_FALSE(preds[1].predicted)
        << "counter still cold after one raw hit";
    EXPECT_TRUE(preds[3].predicted || preds[4].predicted)
        << "confidence must eventually arm on a steady stride";
    EXPECT_GT(classifier.predictionsMade(), 0u);
    EXPECT_EQ(classifier.predictionsWrong(), 0u);
}

TEST(Classifier, ResetPolicySuppressesOscillators)
{
    ClassifiedPredictor classifier(std::make_unique<StridePredictor>(),
                                   2, 0, MissPolicy::Reset);
    // Alternating values defeat the stride predictor; the reset policy
    // must keep the classifier from ever issuing two wrong predictions
    // in a row.
    for (int i = 0; i < 50; ++i) {
        const Value v = (i % 2) ? 111 : 999;
        const ClassifiedPrediction p = classifier.predict(pcA);
        classifier.update(pcA, p, v);
    }
    EXPECT_LE(classifier.predictionsWrong(), 1u);
}

TEST(Classifier, DecrementPolicyIsMoreForgiving)
{
    // Last-value stream with a rare glitch: mostly-correct raw
    // predictions. A decrementing counter shrugs the glitch off; the
    // reset policy re-earns confidence from zero each time.
    ClassifiedPredictor reset_cls(std::make_unique<LastValuePredictor>(),
                                  2, 0, MissPolicy::Reset);
    ClassifiedPredictor dec_cls(std::make_unique<LastValuePredictor>(),
                                2, 0, MissPolicy::Decrement);
    for (int i = 0; i < 120; ++i) {
        const Value v = (i % 8 == 7) ? 1000u + i : 7u;
        for (ClassifiedPredictor *cls : {&reset_cls, &dec_cls}) {
            const ClassifiedPrediction p = cls->predict(pcA);
            cls->update(pcA, p, v);
        }
    }
    EXPECT_GT(dec_cls.predictionsMade(), reset_cls.predictionsMade());
}

TEST(Classifier, TracksMissedOpportunities)
{
    ClassifiedPredictor classifier(std::make_unique<StridePredictor>());
    // Second and third sightings of a constant are raw-correct but the
    // counter (0 -> 1 -> 2) only arms for the fourth.
    for (const Value v : {5, 5, 5, 5}) {
        const ClassifiedPrediction p = classifier.predict(pcA);
        classifier.update(pcA, p, v);
    }
    EXPECT_GE(classifier.missedOpportunities(), 2u);
}

TEST(Classifier, AccuracyComputation)
{
    ClassifiedPredictor classifier(std::make_unique<StridePredictor>());
    EXPECT_DOUBLE_EQ(classifier.accuracy(), 1.0) << "vacuous accuracy";
    for (const Value v : {5, 5, 5, 5, 5, 5}) {
        const ClassifiedPrediction p = classifier.predict(pcA);
        classifier.update(pcA, p, v);
    }
    EXPECT_DOUBLE_EQ(classifier.accuracy(), 1.0);
}

TEST(Classifier, ResetClearsEverything)
{
    ClassifiedPredictor classifier(std::make_unique<StridePredictor>());
    for (const Value v : {5, 5, 5, 5}) {
        const ClassifiedPrediction p = classifier.predict(pcA);
        classifier.update(pcA, p, v);
    }
    classifier.reset();
    EXPECT_EQ(classifier.lookups(), 0u);
    EXPECT_FALSE(classifier.predict(pcA).rawAvailable);
}

TEST(TableStorage, InfiniteModeKeepsEverything)
{
    PredictionTable<int> table(0);
    for (Addr pc = 0; pc < 4096; pc += 4)
        table.findOrAllocate(pc) = static_cast<int>(pc);
    EXPECT_EQ(table.size(), 1024u);
    EXPECT_EQ(*table.find(400), 400);
}

TEST(TableStorage, DirectMappedEvicts)
{
    PredictionTable<int> table(16);
    // Two pcs that collide: same index, different tags.
    const Addr first = 0;
    const Addr second = 16 * instBytes;
    table.findOrAllocate(first) = 1;
    EXPECT_NE(table.find(first), nullptr);
    bool allocated = false;
    table.findOrAllocate(second, &allocated) = 2;
    EXPECT_TRUE(allocated);
    EXPECT_EQ(table.find(first), nullptr) << "victim evicted";
    EXPECT_EQ(*table.find(second), 2);
}

TEST(TableStorage, NonPowerOfTwoCapacityDies)
{
    EXPECT_EXIT((PredictionTable<int>(12)),
                ::testing::ExitedWithCode(1), "power of two");
}

TEST(Factory, BuildsEveryKind)
{
    for (const auto kind :
         {PredictorKind::LastValue, PredictorKind::Stride,
          PredictorKind::TwoDeltaStride, PredictorKind::Hybrid}) {
        const auto predictor = makePredictor(kind);
        ASSERT_NE(predictor, nullptr);
        EXPECT_FALSE(predictor->name().empty());
    }
}

TEST(Factory, ParsesNames)
{
    EXPECT_EQ(predictorKindFromString("stride"), PredictorKind::Stride);
    EXPECT_EQ(predictorKindFromString("last-value"),
              PredictorKind::LastValue);
    EXPECT_EQ(predictorKindFromString("2-delta"),
              PredictorKind::TwoDeltaStride);
    EXPECT_EQ(predictorKindFromString("hybrid"), PredictorKind::Hybrid);
    EXPECT_EXIT(predictorKindFromString("context"),
                ::testing::ExitedWithCode(1), "unknown predictor");
}

/** Property sweep: predictors must be perfect on pure stride streams. */
class StrideStreamProperty
    : public ::testing::TestWithParam<std::tuple<PredictorKind, int>>
{
};

TEST_P(StrideStreamProperty, PerfectAfterWarmup)
{
    const auto [kind, delta] = GetParam();
    if (kind == PredictorKind::LastValue && delta != 0)
        GTEST_SKIP() << "last-value cannot track nonzero strides";
    auto predictor = makePredictor(kind);
    Value value = 1000000;
    unsigned hits = 0;
    constexpr unsigned warmup = 4;
    for (unsigned i = 0; i < 100; ++i) {
        const RawPrediction raw = predictor->lookup(pcA);
        const bool hit = raw.hasPrediction && raw.value == value;
        if (i >= warmup)
            hits += hit ? 1 : 0;
        predictor->train(pcA, value, hit);
        value += static_cast<Value>(delta);
    }
    EXPECT_EQ(hits, 96u) << "every post-warmup prediction must hit";
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, StrideStreamProperty,
    ::testing::Combine(
        ::testing::Values(PredictorKind::LastValue, PredictorKind::Stride,
                          PredictorKind::TwoDeltaStride,
                          PredictorKind::Hybrid),
        ::testing::Values(0, 1, -3, 4096)));

} // namespace
} // namespace vpsim
