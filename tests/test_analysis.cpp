/**
 * @file
 * Tests for the DID and predictability analyses, including an exact
 * reproduction of the paper's Figure 3.2 worked example.
 */

#include <gtest/gtest.h>

#include "analysis/did.hpp"
#include "analysis/predictability.hpp"

namespace vpsim
{
namespace
{

/** Build a synthetic producer/consumer trace record. */
TraceRecord
rec(SeqNum seq, RegIndex rd, RegIndex rs1 = invalidReg,
    RegIndex rs2 = invalidReg, Value result = 0)
{
    TraceRecord record;
    record.seq = seq;
    record.pc = 0x1000 + seq * instBytes;
    record.op = rs1 == invalidReg ? OpCode::Addi : OpCode::Add;
    record.rd = rd;
    record.rs1 = rs1 == invalidReg ? 0 : rs1;
    record.rs2 = rs2;
    record.result = result;
    return record;
}

/**
 * The Figure 3.2 dataflow graph: arcs 1->2 (DID 1), 2->4 (DID 2),
 * 1->5 (DID 4), 5->6 (DID 1), 3->7 (DID 4), 7->8 (DID 1).
 */
std::vector<TraceRecord>
figure32()
{
    return {
        rec(0, 1),          // inst 1
        rec(1, 2, 1),       // inst 2 <- 1
        rec(2, 3),          // inst 3
        rec(3, 4, 2),       // inst 4 <- 2
        rec(4, 5, 1),       // inst 5 <- 1
        rec(5, 6, 5),       // inst 6 <- 5
        rec(6, 7, 3),       // inst 7 <- 3
        rec(7, 8, 7),       // inst 8 <- 7
    };
}

TEST(Did, Figure32ArcsAndAverage)
{
    const DidAnalysis did = analyzeDid(figure32());
    EXPECT_EQ(did.totalArcs, 6u);
    // DIDs: 1, 2, 4, 1, 4, 1 -> average 13/6.
    EXPECT_NEAR(did.averageDid, 13.0 / 6.0, 1e-9);
    // DID >= 4: the two distance-4 arcs.
    EXPECT_NEAR(did.fracDidAtLeast4, 2.0 / 6.0, 1e-9);
}

TEST(Did, Figure32Histogram)
{
    const DidAnalysis did = analyzeDid(figure32());
    const Histogram &hist = did.distribution;
    EXPECT_EQ(hist.bucketCount(0), 3u) << "three arcs with DID 1";
    EXPECT_EQ(hist.bucketCount(1), 1u) << "one arc with DID 2";
    EXPECT_EQ(hist.bucketCount(2), 0u) << "no DID 3 arcs";
    EXPECT_EQ(hist.bucketCount(3), 2u) << "two arcs in the 4-7 bucket";
}

TEST(Did, BothSourcesCreateArcs)
{
    const std::vector<TraceRecord> trace = {
        rec(0, 1),
        rec(1, 2),
        rec(2, 3, 1, 2),
    };
    const DidAnalysis did = analyzeDid(trace);
    EXPECT_EQ(did.totalArcs, 2u);
    EXPECT_NEAR(did.averageDid, 1.5, 1e-9);
}

TEST(Did, RegisterZeroIsNotADependency)
{
    const std::vector<TraceRecord> trace = {
        rec(0, 1),
        rec(1, 2, 0), // reads r0: no arc
    };
    EXPECT_EQ(analyzeDid(trace).totalArcs, 0u);
}

TEST(Did, RedefinitionCutsOldArcs)
{
    const std::vector<TraceRecord> trace = {
        rec(0, 1),
        rec(1, 1),       // redefines r1
        rec(2, 2, 1),    // consumer depends on the RE-definition
    };
    const DidAnalysis did = analyzeDid(trace);
    EXPECT_EQ(did.totalArcs, 1u);
    EXPECT_NEAR(did.averageDid, 1.0, 1e-9);
}

TEST(Did, LoopCarriedDependenciesAreIncluded)
{
    // A producer consumed once per "iteration" 10 instructions apart:
    // the DFG must contain the inter-iteration arcs (no basic-block
    // boundary cuts them).
    std::vector<TraceRecord> trace;
    trace.push_back(rec(0, 5));
    for (SeqNum seq = 1; seq <= 30; ++seq) {
        if (seq % 10 == 0)
            trace.push_back(rec(seq, 5, 5)); // r5 = f(r5)
        else
            trace.push_back(rec(seq, 6));
    }
    const DidAnalysis did = analyzeDid(trace);
    EXPECT_EQ(did.totalArcs, 3u);
    EXPECT_NEAR(did.averageDid, 10.0, 1e-9);
    EXPECT_NEAR(did.fracDidAtLeast4, 1.0, 1e-9);
}

TEST(Did, StreamingCollectorMatchesBatch)
{
    const auto trace = figure32();
    DidCollector collector;
    for (const TraceRecord &record : trace)
        collector.observe(record);
    const DidAnalysis streamed = collector.finish();
    const DidAnalysis batch = analyzeDid(trace);
    EXPECT_EQ(streamed.totalArcs, batch.totalArcs);
    EXPECT_DOUBLE_EQ(streamed.averageDid, batch.averageDid);
}

TEST(Did, EmptyTrace)
{
    const DidAnalysis did = analyzeDid({});
    EXPECT_EQ(did.totalArcs, 0u);
    EXPECT_DOUBLE_EQ(did.averageDid, 0.0);
}

TEST(Predictability, ConstantProducerBecomesPredictable)
{
    // r1 = 42 repeatedly; consumers attach to each instance. The stride
    // predictor locks on after the second sighting.
    std::vector<TraceRecord> trace;
    SeqNum seq = 0;
    for (int i = 0; i < 10; ++i) {
        TraceRecord p = rec(seq, 1, invalidReg, invalidReg, 42);
        p.pc = 0x1000; // same static instruction every time
        trace.push_back(p);
        ++seq;
        TraceRecord c = rec(seq, 2, 1);
        c.pc = 0x1004;
        trace.push_back(c);
        ++seq;
    }
    const PredictabilityAnalysis pa = analyzePredictability(trace);
    EXPECT_EQ(pa.totalArcs, 10u);
    // First arc: producer unseen -> unpredictable. The rest predictable
    // with DID 1.
    EXPECT_NEAR(pa.fracUnpredictable, 0.1, 1e-9);
    EXPECT_NEAR(pa.fracPredictableDid1, 0.9, 1e-9);
    EXPECT_NEAR(pa.fracPredictable(), 0.9, 1e-9);
}

TEST(Predictability, RandomValuesStayUnpredictable)
{
    std::vector<TraceRecord> trace;
    SeqNum seq = 0;
    Value v = 12345;
    for (int i = 0; i < 20; ++i) {
        v = v * 6364136223846793005ull + 1442695040888963407ull;
        TraceRecord p = rec(seq, 1, invalidReg, invalidReg, v);
        p.pc = 0x1000;
        trace.push_back(p);
        ++seq;
        TraceRecord c = rec(seq, 2, 1);
        c.pc = 0x1004;
        trace.push_back(c);
        ++seq;
    }
    const PredictabilityAnalysis pa = analyzePredictability(trace);
    EXPECT_GT(pa.fracUnpredictable, 0.9);
}

TEST(Predictability, DidBucketsSplitCorrectly)
{
    // Producer at distance 5 from its consumer: predictable arcs land in
    // the >= 4 bucket.
    std::vector<TraceRecord> trace;
    SeqNum seq = 0;
    for (int i = 0; i < 10; ++i) {
        TraceRecord p = rec(seq, 1, invalidReg, invalidReg, 7);
        p.pc = 0x1000;
        trace.push_back(p);
        ++seq;
        for (int f = 0; f < 4; ++f) {
            TraceRecord filler = rec(seq, 3);
            filler.pc = 0x2000 + f * instBytes;
            trace.push_back(filler);
            ++seq;
        }
        TraceRecord c = rec(seq, 2, 1);
        c.pc = 0x1004;
        trace.push_back(c);
        ++seq;
    }
    const PredictabilityAnalysis pa = analyzePredictability(trace);
    EXPECT_NEAR(pa.fracPredictableDid4Plus, 0.9, 1e-9);
    EXPECT_DOUBLE_EQ(pa.fracPredictableDid1, 0.0);
    EXPECT_DOUBLE_EQ(pa.fracPredictableShort(), 0.0);
}

TEST(Predictability, FractionsSumToOne)
{
    const auto trace = figure32();
    const PredictabilityAnalysis pa = analyzePredictability(trace);
    EXPECT_NEAR(pa.fracUnpredictable + pa.fracPredictable(), 1.0, 1e-9);
}

} // namespace
} // namespace vpsim
